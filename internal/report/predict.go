package report

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/workloads"
)

// PredictedSection renders the prediction stage of a batch run: per
// execution, how many feasible candidate pairs the lockset + weak-HB
// solver emitted and how many of them the observed interleaving never
// exhibited, followed by the merged replay verdicts for those
// predicted-new races.
type PredictedSection struct {
	Suite *workloads.SuitePredict
}

// BuildPredictedSection wraps a suite's prediction stage (nil-safe: a
// run without the stage renders as a one-line note).
func BuildPredictedSection(run *workloads.SuiteRun) PredictedSection {
	if run == nil {
		return PredictedSection{}
	}
	return PredictedSection{Suite: run.Predict}
}

// Render produces the plain-text section.
func (s PredictedSection) Render() string {
	var b strings.Builder
	b.WriteString("Predicted races (lockset + weak-HB reordering, classified by replay)\n")
	if s.Suite == nil {
		b.WriteString("  (prediction stage not run)\n")
		return b.String()
	}
	b.WriteString("  scenario          cand  observed  reordered  new\n")
	for _, row := range s.Suite.Scenarios {
		fmt.Fprintf(&b, "  %-16s  %4d  %8d  %9d  %3d\n",
			row.Label, row.Candidates, row.Observed, row.Reordered, row.New)
	}
	fmt.Fprintf(&b, "  total: %d candidates (%d observed, %d reordered) in a %d-region window\n",
		s.Suite.Candidates, s.Suite.Observed, s.Suite.Reordered, s.Suite.Window)
	if s.Suite.Merged == nil || len(s.Suite.Merged.Races) == 0 {
		b.WriteString("  no predicted-new races: every feasible pair already raced as recorded\n")
		return b.String()
	}
	benign, harmful := s.Suite.Merged.CountByVerdict()
	fmt.Fprintf(&b, "  predicted-new races: %d potentially benign, %d potentially harmful\n",
		benign, harmful)
	for _, r := range s.Suite.Merged.Races {
		fmt.Fprintf(&b, "    %s  [%s]  (%d instances, %d exposing)\n",
			r.Sites, r.Verdict, r.Total, r.Exposing())
	}
	return b.String()
}

// PredictedReport renders one execution's prediction stage in full:
// solver statistics, per-constraint rejection counts, and every
// predicted-new race with its replay verdict and witness schedule —
// the developer-facing output of `racer predict`.
func PredictedReport(p *core.Predicted) string {
	var b strings.Builder
	if p == nil {
		b.WriteString("prediction stage not run\n")
		return b.String()
	}
	rep := p.Report
	observed := 0
	for _, c := range rep.Candidates {
		if c.Observed {
			observed++
		}
	}
	fmt.Fprintf(&b, "prediction: %d feasible candidate pairs (%d observed, %d reordered) in a %d-region window\n",
		len(rep.Candidates), observed, len(rep.Candidates)-observed, rep.Window)
	fmt.Fprintf(&b, "  blocks: %d, pairs screened: %d\n", rep.Blocks, rep.PairsScreened)
	rj := rep.Rejected
	if rj.Window+rj.WeakHB+rj.Lockset+rj.Value > 0 {
		fmt.Fprintf(&b, "  rejected: %d window, %d weak-hb, %d lockset, %d value\n",
			rj.Window, rj.WeakHB, rj.Lockset, rj.Value)
	}
	if len(p.NewRaces.Races) == 0 {
		b.WriteString("no predicted-new races: every feasible pair already raced as recorded\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%d predicted-new races (feasible, never exhibited as recorded):\n",
		len(p.NewRaces.Races))
	verdicts := map[string]string{}
	if p.Classification != nil {
		for _, r := range p.Classification.Races {
			verdicts[r.Sites.String()] = r.Verdict.String()
		}
	}
	for _, race := range p.NewRaces.Races {
		verdict := verdicts[race.Sites.String()]
		if verdict == "" {
			verdict = "suppressed"
		}
		fmt.Fprintf(&b, "  %s  [%s]  (%d instances)\n", race.Sites, verdict, len(race.Instances))
		for _, c := range rep.Candidates {
			if c.Sites != race.Sites {
				continue
			}
			regions := make([]string, len(c.Witness.Regions))
			for i, g := range c.Witness.Regions {
				regions[i] = fmt.Sprint(g)
			}
			fmt.Fprintf(&b, "    witness (%s): regions %s\n", c.Witness.Kind, strings.Join(regions, " -> "))
			break
		}
	}
	return b.String()
}
