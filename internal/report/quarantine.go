package report

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// QuarantineSection renders the degraded-input half of a batch report:
// one line per quarantined item, labeled with the scenario or file name
// and its typed error. An empty quarantine renders nothing, so callers
// can print it unconditionally.
func QuarantineSection(items []core.Quarantined) string {
	if len(items) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "quarantined: %d input(s) excluded from the analysis\n", len(items))
	for _, q := range items {
		fmt.Fprintf(&b, "  %s\n", q)
	}
	return b.String()
}
