package report

import (
	"fmt"
	"strings"

	"repro/internal/audit"
)

// AuditSection renders the verdict-provenance trail for human review:
// per execution the input log's content hash (or quarantine reason),
// per race the verdict with its evidence line — instance count, cache
// attribution, and both replay orders' outcomes of the first instance.
// A nil file renders nothing, so callers can print it unconditionally.
func AuditSection(f *audit.File) string {
	if f == nil || len(f.Executions) == 0 {
		return ""
	}
	var b strings.Builder
	hits, misses := f.CacheHits()
	fmt.Fprintf(&b, "audit trail (%s): %d execution(s), %d replay(s) cached of %d\n",
		audit.SchemaID, len(f.Executions), hits, hits+misses)
	for _, e := range f.Executions {
		if e.Quarantined != "" {
			fmt.Fprintf(&b, "  %s (seed %d): quarantined: %s\n", e.Scenario, e.Seed, e.Quarantined)
			continue
		}
		fmt.Fprintf(&b, "  %s (seed %d): log sha256 %s…, %d race(s)\n",
			e.Scenario, e.Seed, shortHash(e.LogSHA256), len(e.Races))
		for _, r := range e.Races {
			verdict := r.Verdict
			if r.Suppressed {
				verdict += " (suppressed)"
			}
			var cached int
			for _, in := range r.Instances {
				if in.CacheHit {
					cached++
				}
			}
			fmt.Fprintf(&b, "    %s <-> %s: %s [%s], %d instance(s), %d cached\n",
				r.SiteA, r.SiteB, verdict, r.Group, len(r.Instances), cached)
			if len(r.Instances) > 0 {
				in := r.Instances[0]
				fmt.Fprintf(&b, "      first instance %s…: %s (orig: %s; alt: %s)\n",
					shortHash(in.Fingerprint), in.Outcome, in.OrigOrder, in.AltOrder)
			}
		}
	}
	return b.String()
}

// shortHash abbreviates a hex digest for display.
func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
