package report

import (
	"strings"
	"testing"

	"repro/internal/audit"
)

func TestAuditSection(t *testing.T) {
	if got := AuditSection(nil); got != "" {
		t.Fatalf("nil file rendered %q", got)
	}
	f := audit.NewFile()
	f.Executions = []audit.Execution{
		{
			Scenario:  "exec01",
			Seed:      42,
			LogSHA256: strings.Repeat("ab", 32),
			Races: []audit.Race{{
				SiteA: "pc=10", SiteB: "pc=20",
				Verdict: "potentially-harmful", Group: "state-change",
				Instances: []audit.Instance{
					{Fingerprint: strings.Repeat("cd", 32), Outcome: "state-change",
						OrigOrder: "ok", AltOrder: "ok", Diffs: 2},
					{Fingerprint: strings.Repeat("cd", 32), CacheHit: true,
						Outcome: "state-change", OrigOrder: "ok", AltOrder: "ok", Diffs: 2},
				},
			}},
		},
		{Scenario: "exec02", Seed: 43, Quarantined: "decode: truncated"},
	}
	out := AuditSection(f)
	for _, want := range []string{
		audit.SchemaID,
		"1 replay(s) cached of 2",
		"exec01 (seed 42): log sha256 abababababab…, 1 race(s)",
		"pc=10 <-> pc=20: potentially-harmful [state-change], 2 instance(s), 1 cached",
		"first instance cdcdcdcdcdcd…: state-change (orig: ok; alt: ok)",
		"exec02 (seed 43): quarantined: decode: truncated",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("audit section missing %q:\n%s", want, out)
		}
	}
}
