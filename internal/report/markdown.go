package report

import (
	"fmt"
	"strings"

	"repro/internal/classify"
	"repro/internal/workloads"
)

// Markdown renders the whole evaluation as a GitHub-markdown document —
// the machine-generated companion to EXPERIMENTS.md (regenerate with
// `paperbench -md`).
func Markdown(c *classify.Classification, truth Truth) string {
	var b strings.Builder
	b.WriteString("# Evaluation (generated)\n\n")

	t1 := BuildTable1(c, truth)
	pbRB, pbRH := t1.PotentiallyBenign()
	phRB, phRH := t1.PotentiallyHarmful()
	fmt.Fprintf(&b, "%d unique races, %d instances analyzed.\n\n", t1.Total(), c.TotalInstances())

	b.WriteString("## Table 1 — classification\n\n")
	b.WriteString("| Outcome | Real benign | Real harmful | Total |\n|---|---|---|---|\n")
	row := func(name string, g classify.Group) {
		fmt.Fprintf(&b, "| %s | %d | %d | %d |\n", name, t1.RB[g], t1.RH[g], t1.RB[g]+t1.RH[g])
	}
	row("No state change (potentially benign)", classify.GroupNoStateChange)
	row("State change (potentially harmful)", classify.GroupStateChange)
	row("Replay failure (potentially harmful)", classify.GroupReplayFailure)
	fmt.Fprintf(&b, "| **Total** | %d + %d | %d + %d | %d |\n\n", pbRB, phRB, pbRH, phRH, t1.Total())

	t2 := BuildTable2(c, truth)
	b.WriteString("## Table 2 — benign races by category\n\n")
	b.WriteString("| Category | Races |\n|---|---|\n")
	total := 0
	for _, cat := range []workloads.Category{
		workloads.CatUserSync, workloads.CatDoubleCheck, workloads.CatBothValid,
		workloads.CatRedundantWrite, workloads.CatDisjointBits, workloads.CatApprox,
	} {
		fmt.Fprintf(&b, "| %s | %d |\n", cat, t2.Counts[cat])
		total += t2.Counts[cat]
	}
	fmt.Fprintf(&b, "| **Total** | %d |\n\n", total)

	for _, fig := range []Figure{
		BuildFigure3(c, truth), BuildFigure4(c, truth), BuildFigure5(c, truth),
	} {
		fmt.Fprintf(&b, "## %s\n\n", fig.Title)
		fmt.Fprintf(&b, "%d races; instances per race: %s\n\n", len(fig.Rows), fig.InstanceStats())
		b.WriteString("| Race | Instances | Exposing (sc/rf) |\n|---|---|---|\n")
		for _, r := range fig.Rows {
			fmt.Fprintf(&b, "| `%s` | %d | %d (%d/%d) |\n", r.Sites, r.Total, r.Exposing, r.SC, r.RF)
		}
		b.WriteString("\n")
	}
	return b.String()
}
