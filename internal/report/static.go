package report

import (
	"fmt"
	"strings"

	"repro/internal/static"
	"repro/internal/workloads"
)

// StaticSection renders the static-vs-dynamic cross-validation of a suite
// run: per scenario, how the ahead-of-execution candidates fared against
// the happens-before races and replay verdicts — the static analogue of
// the paper's lockset-vs-HB comparison benchmark.
type StaticSection struct {
	Suite *workloads.SuiteStatic
}

// BuildStaticSection wraps a suite's static stage (nil-safe: a suite run
// without the static stage renders as a one-line note).
func BuildStaticSection(run *workloads.SuiteRun) StaticSection {
	if run == nil {
		return StaticSection{}
	}
	return StaticSection{Suite: run.Static}
}

// Render produces the plain-text section.
func (s StaticSection) Render() string {
	var b strings.Builder
	b.WriteString("Static cross-validation (lint vs dynamic HB + replay)\n")
	if s.Suite == nil {
		b.WriteString("  (static stage not run)\n")
		return b.String()
	}
	b.WriteString("  scenario          cand  matched  refuted  unmatched  missed\n")
	for _, sc := range s.Suite.Scenarios {
		if sc.Cross == nil {
			fmt.Fprintf(&b, "  %-16s  (quarantined)\n", sc.Name)
			continue
		}
		c := sc.Cross
		fmt.Fprintf(&b, "  %-16s  %4d  %7d  %7d  %9d  %6d\n",
			sc.Name, len(c.Candidates), c.Matched, c.Refuted, c.Unmatched, len(c.Missed))
	}
	tot := s.Suite
	fmt.Fprintf(&b, "  total: %d matched, %d refuted, %d unmatched, %d missed\n",
		tot.Matched, tot.Refuted, tot.Unmatched, tot.Missed)
	den := tot.Matched + tot.Refuted
	if den > 0 {
		fmt.Fprintf(&b, "  precision (vs dynamically tested): %.2f\n", float64(tot.Matched)/float64(den))
	}
	denR := tot.Matched + tot.Missed
	if denR > 0 {
		fmt.Fprintf(&b, "  recall (dynamic races predicted):  %.2f\n", float64(tot.Matched)/float64(denR))
	}
	if tot.HasPredicted {
		// The three-engine matrix: the same static candidates judged
		// against the prediction engine's race set (observed races plus
		// feasible reorderings). A refuted->matched move between the two
		// rows is a static positive the observed schedule alone would
		// have dismissed.
		fmt.Fprintf(&b, "  vs prediction engine: %d matched, %d refuted, %d unmatched, %d missed\n",
			tot.PredMatched, tot.PredRefuted, tot.PredUnmatched, tot.PredMissed)
		if den := tot.PredMatched + tot.PredRefuted; den > 0 {
			fmt.Fprintf(&b, "  precision (vs predicted races):    %.2f\n", float64(tot.PredMatched)/float64(den))
		}
		if den := tot.PredMatched + tot.PredMissed; den > 0 {
			fmt.Fprintf(&b, "  recall (predicted races flagged):  %.2f\n", float64(tot.PredMatched)/float64(den))
		}
	}
	if tot.Missed > 0 {
		b.WriteString("  missed dynamic races (static false negatives):\n")
		for _, sc := range s.Suite.Scenarios {
			if sc.Cross == nil {
				continue
			}
			for _, m := range sc.Cross.Missed {
				fmt.Fprintf(&b, "    %s: %s [%s]\n", sc.Name, m.Sites, m.Verdict)
			}
		}
	}
	// Matched candidates with a benign-idiom hint: the static pass's
	// Table 2 preview, checked against the classifier's verdict. The same
	// race appearing in several scenarios renders once.
	seen := map[string]bool{}
	var hinted []string
	for _, sc := range s.Suite.Scenarios {
		if sc.Cross == nil {
			continue
		}
		for _, cc := range sc.Cross.Candidates {
			if cc.State != static.MatchMatched || cc.Hint == static.HintNone {
				continue
			}
			line := fmt.Sprintf("    %s <-> %s  hint=%s verdict=%s",
				cc.SiteA, cc.SiteB, cc.Hint, cc.Verdict)
			if !seen[line] {
				seen[line] = true
				hinted = append(hinted, line)
			}
		}
	}
	if len(hinted) > 0 {
		b.WriteString("  benign-idiom hints on matched races:\n")
		for _, line := range hinted {
			b.WriteString(line + "\n")
		}
	}
	return b.String()
}
