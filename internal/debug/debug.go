// Package debug implements a time-travel debugger over replay logs —
// the iDNA facility the paper couples with its race reports ("the ability
// to do reverse execution (also called time travel debugging) ...
// provides a powerful platform for the developers to examine the
// potentially harmful data races", §1).
//
// Navigation is at sequencing-region granularity: position p means "the
// first p regions of the schedule have executed". Stepping backwards is
// replaying a shorter prefix — the log makes any point in time
// reconstructible.
package debug

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/replay"
	"repro/internal/trace"
)

// Debugger navigates one recorded execution. Seeks are served from the
// nearest key frame (a replay.Snapshot taken every few regions during the
// initial pass), so stepping backwards costs O(checkpoint interval), not
// O(prefix).
type Debugger struct {
	log    *trace.Log
	sess   *replay.Session
	full   *replay.Execution // the session's execution, fully processed once
	vm     *replay.VersionedMemory
	frames []*replay.Snapshot // key frames, ascending by position
}

// New builds a debugger positioned at the end of the execution.
func New(log *trace.Log) (*Debugger, error) {
	sess, err := replay.NewSession(log, replay.Options{})
	if err != nil {
		return nil, err
	}
	d := &Debugger{log: log, sess: sess, full: sess.Exec()}
	// Initial pass: process everything, dropping a key frame every
	// `interval` regions (including one at position 0).
	total := len(d.full.Regions)
	interval := 1
	for interval*interval < total {
		interval++
	}
	for !sess.Done() {
		if sess.Pos()%interval == 0 {
			d.frames = append(d.frames, sess.Snapshot())
		}
		if err := sess.StepRegion(); err != nil {
			return nil, err
		}
	}
	if _, err := sess.Finish(); err != nil {
		return nil, err
	}
	d.vm = replay.BuildVersionedMemory(d.full)
	return d, nil
}

// Len returns the number of sequencing regions in the schedule.
func (d *Debugger) Len() int { return len(d.full.Regions) }

// Pos returns the current position (regions executed so far).
func (d *Debugger) Pos() int { return d.sess.Pos() }

// Seek repositions to pos (clamped to [1, Len]): restore the nearest key
// frame at or before pos (only when moving backwards past the current
// position) and step forward the remainder.
func (d *Debugger) Seek(pos int) error {
	if pos < 1 {
		pos = 1
	}
	if pos > d.Len() {
		pos = d.Len()
	}
	if pos < d.sess.Pos() {
		frame := d.frames[0]
		for _, f := range d.frames {
			if f.Pos() <= pos {
				frame = f
			} else {
				break
			}
		}
		d.sess.Restore(frame)
	}
	for d.sess.Pos() < pos {
		if err := d.sess.StepRegion(); err != nil {
			return err
		}
	}
	return nil
}

// Step advances n regions (negative steps backwards).
func (d *Debugger) Step(n int) error { return d.Seek(d.Pos() + n) }

// Mem reads the reconstructed memory image at the current position.
// Unwritten addresses read as zero (and report false).
func (d *Debugger) Mem(addr uint64) (uint64, bool) {
	v, ok := d.sess.Exec().FinalMem[addr]
	return v, ok
}

// Thread returns the architectural state of tid at the current position.
func (d *Debugger) Thread(tid int) (machine.Cpu, bool) {
	return d.sess.ThreadCpu(tid)
}

// Output returns what tid has printed up to the current position.
func (d *Debugger) Output(tid int) []int64 {
	if t := d.sess.Exec().Thread(tid); t != nil {
		return t.Output
	}
	return nil
}

// Region describes schedule entry i (independent of position).
func (d *Debugger) Region(i int) (*replay.Region, bool) {
	if i < 0 || i >= d.Len() {
		return nil, false
	}
	return d.full.Regions[i], true
}

// WritesTo lists the schedule positions whose region wrote addr, with the
// value written — "when did this variable change?", the core time-travel
// question.
func (d *Debugger) WritesTo(addr uint64) []Write {
	var out []Write
	for _, reg := range d.full.Regions {
		for _, acc := range reg.Accesses {
			if acc.Addr == addr && acc.IsWrite {
				out = append(out, Write{Pos: reg.Global + 1, TID: reg.TID, PC: acc.PC, Val: acc.Val})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// Write is one recorded store to a watched address.
type Write struct {
	Pos int // schedule position after which the write is visible
	TID int
	PC  int
	Val uint64
}

// FirstWriteTo finds the earliest schedule position at which addr holds a
// non-zero value — a root-cause search helper.
func (d *Debugger) FirstWriteTo(addr uint64) (Write, bool) {
	ws := d.WritesTo(addr)
	if len(ws) == 0 {
		return Write{}, false
	}
	return ws[0], true
}

// ThreadStateAt answers an instruction-granular per-thread state query
// straight from the log (resuming from a key frame when the log has
// them) — finer than the debugger's region-granular position.
func (d *Debugger) ThreadStateAt(tid int, idx uint64) (*replay.ThreadState, error) {
	return replay.ThreadStateAt(d.log, tid, idx)
}

// ValueBefore asks the versioned memory what addr held before schedule
// entry global ran.
func (d *Debugger) ValueBefore(addr uint64, global int) (uint64, bool) {
	return d.vm.Before(addr, global)
}

// Summary renders the current position: which region just ran, per-thread
// progress.
func (d *Debugger) Summary() string {
	var b strings.Builder
	pos := d.Pos()
	fmt.Fprintf(&b, "position %d/%d", pos, d.Len())
	if pos >= 1 {
		r := d.full.Regions[pos-1]
		fmt.Fprintf(&b, "  (last region: thread %d, %s..%s, instructions %d..%d)",
			r.TID, r.StartKind, r.EndKind, r.StartIdx, r.EndIdx)
	}
	b.WriteString("\n")
	for _, t := range d.sess.Exec().Threads {
		cpu, _ := d.sess.ThreadCpu(t.TID)
		fmt.Fprintf(&b, "  thread %d: pc %d (%s)", t.TID, cpu.PC, d.full.Prog.SiteOf(cpu.PC))
		if len(t.Output) > 0 {
			fmt.Fprintf(&b, " output %v", t.Output)
		}
		b.WriteString("\n")
	}
	return b.String()
}
