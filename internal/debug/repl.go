package debug

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// REPL runs a scriptable debugger session: one command per line from in,
// responses to out. Commands:
//
//	pos              show the current position and thread states
//	step [n]         run n regions forward (default 1)
//	back [n]         run n regions backward (default 1)
//	seek N           jump to position N
//	mem ADDR         read a memory word (hex 0x.. or decimal)
//	regs TID         show a thread's registers
//	tstate TID IDX   registers of TID after exactly IDX instructions
//	output TID       show a thread's printed values so far
//	regions          list the region schedule
//	writes ADDR      list every write to ADDR across the execution
//	first ADDR       earliest write to ADDR (root-cause helper)
//	quit             end the session
func REPL(log *trace.Log, in io.Reader, out io.Writer) error {
	d, err := New(log)
	if err != nil {
		return err
	}
	if err := d.Seek(1); err != nil {
		return err
	}
	fmt.Fprintf(out, "time-travel debugger: %d regions, %d threads (type 'help')\n", d.Len(), len(d.full.Threads))
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]
		switch cmd {
		case "quit", "q", "exit":
			return nil
		case "help":
			fmt.Fprintln(out, "commands: pos step back seek mem regs tstate output regions writes first quit")
		case "pos":
			fmt.Fprint(out, d.Summary())
		case "step":
			n := argInt(args, 0, 1)
			if err := d.Step(n); err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprint(out, d.Summary())
		case "back":
			n := argInt(args, 0, 1)
			if err := d.Step(-n); err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprint(out, d.Summary())
		case "seek":
			if err := d.Seek(argInt(args, 0, 1)); err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprint(out, d.Summary())
		case "mem":
			addr, err := parseAddr(args)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			v, known := d.Mem(addr)
			if known {
				fmt.Fprintf(out, "mem[0x%x] = %d\n", addr, v)
			} else {
				fmt.Fprintf(out, "mem[0x%x] = 0 (never written up to here)\n", addr)
			}
		case "regs":
			tid := argInt(args, 0, 0)
			cpu, ok := d.Thread(tid)
			if !ok {
				fmt.Fprintf(out, "no thread %d\n", tid)
				continue
			}
			fmt.Fprintf(out, "thread %d pc=%d\n", tid, cpu.PC)
			for i, r := range cpu.Regs {
				if r != 0 {
					fmt.Fprintf(out, "  r%-2d = %d\n", i, r)
				}
			}
		case "tstate":
			tid := argInt(args, 0, 0)
			idx := argInt(args, 1, 0)
			st, err := d.ThreadStateAt(tid, uint64(idx))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintf(out, "thread %d after %d instructions: pc=%d\n", tid, idx, st.Cpu.PC)
			for i, r := range st.Cpu.Regs {
				if r != 0 {
					fmt.Fprintf(out, "  r%-2d = %d\n", i, r)
				}
			}
		case "output":
			tid := argInt(args, 0, 0)
			fmt.Fprintf(out, "thread %d output: %v\n", tid, d.Output(tid))
		case "regions":
			for i := 0; i < d.Len(); i++ {
				r, _ := d.Region(i)
				marker := "  "
				if i == d.Pos()-1 {
					marker = "=>"
				}
				fmt.Fprintf(out, "%s %3d thread %d  [%s..%s)  idx %d..%d  (%d accesses)\n",
					marker, i+1, r.TID, r.StartKind, r.EndKind, r.StartIdx, r.EndIdx, len(r.Accesses))
			}
		case "writes":
			addr, err := parseAddr(args)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			ws := d.WritesTo(addr)
			if len(ws) == 0 {
				fmt.Fprintf(out, "no writes to 0x%x\n", addr)
				continue
			}
			for _, w := range ws {
				fmt.Fprintf(out, "  pos %3d: thread %d stores %d (pc %d, %s)\n",
					w.Pos, w.TID, w.Val, w.PC, d.full.Prog.SiteOf(w.PC))
			}
		case "first":
			addr, err := parseAddr(args)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			if w, ok := d.FirstWriteTo(addr); ok {
				fmt.Fprintf(out, "first write at pos %d: thread %d stores %d (%s)\n",
					w.Pos, w.TID, w.Val, d.full.Prog.SiteOf(w.PC))
			} else {
				fmt.Fprintf(out, "0x%x is never written\n", addr)
			}
		default:
			fmt.Fprintf(out, "unknown command %q (try 'help')\n", cmd)
		}
	}
	return sc.Err()
}

func argInt(args []string, i, def int) int {
	if i >= len(args) {
		return def
	}
	n, err := strconv.Atoi(args[i])
	if err != nil {
		return def
	}
	return n
}

func parseAddr(args []string) (uint64, error) {
	if len(args) == 0 {
		return 0, fmt.Errorf("address required")
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(args[0], "0x"), hexOrDec(args[0]), 64)
	if err != nil {
		return 0, fmt.Errorf("bad address %q", args[0])
	}
	return v, nil
}

func hexOrDec(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}
