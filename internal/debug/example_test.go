package debug_test

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/asm"
	"repro/internal/debug"
	"repro/internal/machine"
	"repro/internal/record"
)

// Example walks a recorded execution backwards to find where a counter
// first became non-zero.
func Example() {
	src := `
.word counter 0
main:
  ldi r2, counter
  ldi r3, 5
  st [r2+0], r3
  fence
  ldi r3, 9
  st [r2+0], r3
  fence
  halt
`
	prog, err := asm.Assemble("ex", src)
	if err != nil {
		log.Fatal(err)
	}
	rlog, _, err := record.Run(prog, machine.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	d, err := debug.New(rlog)
	if err != nil {
		log.Fatal(err)
	}
	w, _ := d.FirstWriteTo(0x1000)
	fmt.Printf("first write at position %d stored %d\n", w.Pos, w.Val)
	if err := d.Seek(w.Pos); err != nil {
		log.Fatal(err)
	}
	v, _ := d.Mem(0x1000)
	fmt.Printf("counter right after it: %d\n", v)
	// Output:
	// first write at position 1 stored 5
	// counter right after it: 5
}

// ExampleREPL drives a scripted debugger session.
func ExampleREPL() {
	src := "main:\n  fence\n  halt\n"
	prog, err := asm.Assemble("ex", src)
	if err != nil {
		log.Fatal(err)
	}
	rlog, _, err := record.Run(prog, machine.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	var out strings.Builder
	if err := debug.REPL(rlog, strings.NewReader("pos\nquit\n"), &out); err != nil {
		log.Fatal(err)
	}
	fmt.Println(strings.SplitN(out.String(), "\n", 2)[0])
	// Output:
	// time-travel debugger: 2 regions, 1 threads (type 'help')
}
