package debug

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/record"
	"repro/internal/trace"
)

const counterSrc = `
.entry main
.word counter 0
producer:
  ldi r5, 5
ploop:
  ldi r2, counter
  ld r3, [r2+0]
  addi r3, r3, 10
  st [r2+0], r3
  sys sysnop
  addi r5, r5, -1
  bne r5, r0, ploop
  ldi r1, 0
  sys exit
main:
  ldi r1, producer
  ldi r2, 0
  sys spawn
  sys join
  ldi r2, counter
  ld r1, [r2+0]
  sys print
  halt
`

func recordCounter(t *testing.T) *trace.Log {
	t.Helper()
	prog, err := asm.Assemble("dbg", counterSrc)
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := record.Run(prog, machine.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func TestDebuggerSeekAndMemory(t *testing.T) {
	log := recordCounter(t)
	d, err := New(log)
	if err != nil {
		t.Fatal(err)
	}
	if d.Pos() != d.Len() {
		t.Fatalf("fresh debugger should sit at the end (%d/%d)", d.Pos(), d.Len())
	}
	counterAddr := isa.DataBase

	// At the end the counter holds 50.
	if v, _ := d.Mem(counterAddr); v != 50 {
		t.Errorf("final counter = %d, want 50", v)
	}
	// Walk backwards: the value must be non-increasing and reach 0.
	prev := uint64(50)
	for pos := d.Len(); pos >= 1; pos-- {
		if err := d.Seek(pos); err != nil {
			t.Fatal(err)
		}
		v, _ := d.Mem(counterAddr)
		if v > prev {
			t.Fatalf("counter increased going backwards: %d -> %d at pos %d", prev, v, pos)
		}
		prev = v
	}
	if prev != 0 {
		t.Errorf("counter at position 1 = %d, want 0", prev)
	}
}

func TestDebuggerStepAndClamp(t *testing.T) {
	log := recordCounter(t)
	d, err := New(log)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Seek(1); err != nil {
		t.Fatal(err)
	}
	if err := d.Step(2); err != nil || d.Pos() != 3 {
		t.Fatalf("step: pos = %d, err %v", d.Pos(), err)
	}
	if err := d.Step(-1); err != nil || d.Pos() != 2 {
		t.Fatalf("back: pos = %d, err %v", d.Pos(), err)
	}
	if err := d.Step(-99); err != nil || d.Pos() != 1 {
		t.Fatalf("clamp low: pos = %d", d.Pos())
	}
	if err := d.Step(999); err != nil || d.Pos() != d.Len() {
		t.Fatalf("clamp high: pos = %d", d.Pos())
	}
}

func TestDebuggerWritesTo(t *testing.T) {
	log := recordCounter(t)
	d, err := New(log)
	if err != nil {
		t.Fatal(err)
	}
	ws := d.WritesTo(isa.DataBase)
	if len(ws) != 5 {
		t.Fatalf("writes = %d, want 5", len(ws))
	}
	for i, w := range ws {
		if w.Val != uint64(10*(i+1)) {
			t.Errorf("write %d value = %d, want %d", i, w.Val, 10*(i+1))
		}
		if w.TID != 1 {
			t.Errorf("write %d by thread %d, want 1", i, w.TID)
		}
	}
	first, ok := d.FirstWriteTo(isa.DataBase)
	if !ok || first.Val != 10 {
		t.Errorf("first write = %+v, %v", first, ok)
	}
	if _, ok := d.FirstWriteTo(0xdddd); ok {
		t.Error("phantom write")
	}
	// Seeking to just before the first write shows 0; just after shows 10.
	if err := d.Seek(first.Pos - 1); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Mem(isa.DataBase); v != 0 {
		t.Errorf("before first write: %d, want 0", v)
	}
	if err := d.Seek(first.Pos); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Mem(isa.DataBase); v != 10 {
		t.Errorf("after first write: %d, want 10", v)
	}
}

func TestDebuggerThreadAndOutput(t *testing.T) {
	log := recordCounter(t)
	d, err := New(log)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Thread(0); !ok {
		t.Error("main thread missing")
	}
	if _, ok := d.Thread(9); ok {
		t.Error("phantom thread")
	}
	if out := d.Output(0); len(out) != 1 || out[0] != 50 {
		t.Errorf("main output = %v, want [50]", out)
	}
	if v, ok := d.ValueBefore(isa.DataBase, d.Len()); !ok || v != 50 {
		t.Errorf("ValueBefore end = %d,%v", v, ok)
	}
	if s := d.Summary(); !strings.Contains(s, "position") || !strings.Contains(s, "thread 0") {
		t.Errorf("summary incomplete: %s", s)
	}
}

func TestREPLSession(t *testing.T) {
	log := recordCounter(t)
	script := `
pos
step 3
mem 0x1000
back 2
mem 0x1000
regions
writes 0x1000
first 0x1000
regs 0
output 0
seek 1
mem 0x1000
bogus
help
quit
`
	var out strings.Builder
	if err := REPL(log, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"time-travel debugger",
		"position",
		"mem[0x1000]",
		"first write at pos",
		"unknown command \"bogus\"",
		"commands:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("REPL output missing %q:\n%s", want, text)
		}
	}
}

func TestREPLQuitAndEOF(t *testing.T) {
	log := recordCounter(t)
	var out strings.Builder
	if err := REPL(log, strings.NewReader("quit\n"), &out); err != nil {
		t.Fatal(err)
	}
	// EOF without quit is also a clean exit.
	if err := REPL(log, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
}

func TestThreadStateAtViaDebugger(t *testing.T) {
	log := recordCounter(t)
	d, err := New(log)
	if err != nil {
		t.Fatal(err)
	}
	tl := log.Thread(1)
	st, err := d.ThreadStateAt(1, tl.Retired)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := d.Thread(1)
	if st.Cpu.Regs != full.Regs {
		t.Error("instruction-granular final state differs from region-granular")
	}
	if _, err := d.ThreadStateAt(42, 0); err == nil {
		t.Error("phantom thread accepted")
	}
}

func TestREPLTstate(t *testing.T) {
	log := recordCounter(t)
	var out strings.Builder
	if err := REPL(log, strings.NewReader("tstate 1 3\ntstate 99 0\nquit\n"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "thread 1 after 3 instructions") {
		t.Errorf("tstate output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "error:") {
		t.Error("bad tid should error")
	}
}
