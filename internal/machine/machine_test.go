package machine

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func run(t *testing.T, src string, cfg Config) (*Machine, *Result) {
	t.Helper()
	prog, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, m.Run()
}

func TestArithmeticAndPrint(t *testing.T) {
	src := `
main:
  ldi r1, 6
  ldi r2, 7
  mul r3, r1, r2
  mov r1, r3
  sys print
  ldi r1, 100
  addi r1, r1, -58
  sys print
  halt
`
	_, res := run(t, src, Config{Seed: 1})
	t0 := res.Threads[0]
	if t0.State != Halted {
		t.Fatalf("state = %v, fault = %v", t0.State, t0.Fault)
	}
	want := []int64{42, 42}
	if len(t0.Output) != 2 || t0.Output[0] != want[0] || t0.Output[1] != want[1] {
		t.Errorf("output = %v, want %v", t0.Output, want)
	}
}

func TestLoopAndMemory(t *testing.T) {
	src := `
.word sum 0
main:
  ldi r1, 10
  ldi r2, sum
loop:
  ld r3, [r2+0]
  add r3, r3, r1
  st [r2+0], r3
  addi r1, r1, -1
  bne r1, r0, loop
  ld r1, [r2+0]
  sys print
  halt
`
	_, res := run(t, src, Config{Seed: 1})
	t0 := res.Threads[0]
	if len(t0.Output) != 1 || t0.Output[0] != 55 {
		t.Errorf("output = %v, want [55]", t0.Output)
	}
}

func TestCallRet(t *testing.T) {
	src := `
.entry main
double:
  add r1, r1, r1
  ret
main:
  ldi r1, 21
  call double
  sys print
  halt
`
	_, res := run(t, src, Config{Seed: 1})
	t0 := res.Threads[0]
	if t0.State != Halted {
		t.Fatalf("state = %v, fault = %v", t0.State, t0.Fault)
	}
	if len(t0.Output) != 1 || t0.Output[0] != 42 {
		t.Errorf("output = %v, want [42]", t0.Output)
	}
}

func TestSpawnJoin(t *testing.T) {
	src := `
.entry main
.word cell 0
child:
  ; r1 = arg
  ldi r2, cell
  st [r2+0], r1
  ldi r1, 5
  sys exit
main:
  ldi r1, child
  ldi r2, 99
  sys spawn         ; r1 = child tid
  sys join          ; r1 = child exit code
  sys print
  ldi r2, cell
  ld r1, [r2+0]
  sys print
  halt
`
	_, res := run(t, src, Config{Seed: 7})
	t0 := res.Threads[0]
	if t0.State != Halted {
		t.Fatalf("state = %v, fault = %v", t0.State, t0.Fault)
	}
	if len(t0.Output) != 2 || t0.Output[0] != 5 || t0.Output[1] != 99 {
		t.Errorf("output = %v, want [5 99]", t0.Output)
	}
	if len(res.Threads) != 2 {
		t.Errorf("thread count = %d, want 2", len(res.Threads))
	}
}

func TestMutexProtectsCounter(t *testing.T) {
	// Two threads each add 1 to a shared counter 200 times under a lock;
	// with instruction-granular preemption the final value must be exact.
	src := `
.entry main
.word mu 0
.word n 0
worker:
  ldi r2, 200
wloop:
  ldi r3, mu
  lock [r3+0]
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  unlock [r3+0]
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  ldi r2, n
  ld r1, [r2+0]
  sys print
  halt
`
	for _, seed := range []int64{1, 2, 3, 17, 99} {
		_, res := run(t, src, Config{Seed: seed})
		t0 := res.Threads[0]
		if t0.State != Halted {
			t.Fatalf("seed %d: state = %v, fault = %v", seed, t0.State, t0.Fault)
		}
		if len(t0.Output) != 1 || t0.Output[0] != 400 {
			t.Errorf("seed %d: output = %v, want [400]", seed, t0.Output)
		}
		if res.Deadlocked {
			t.Errorf("seed %d: unexpected deadlock", seed)
		}
	}
}

func TestRacyCounterLosesUpdates(t *testing.T) {
	// Same as above without the lock: some seed must lose updates,
	// demonstrating that the scheduler actually interleaves.
	src := `
.entry main
.word n 0
worker:
  ldi r2, 300
wloop:
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  ldi r2, n
  ld r1, [r2+0]
  sys print
  halt
`
	lost := false
	for seed := int64(1); seed <= 10; seed++ {
		_, res := run(t, src, Config{Seed: seed})
		if out := res.Threads[0].Output; len(out) == 1 && out[0] < 600 {
			lost = true
			break
		}
	}
	if !lost {
		t.Error("no seed lost an update; scheduler may not be preempting")
	}
}

func TestDeterminism(t *testing.T) {
	src := `
.entry main
.word n 0
worker:
  ldi r2, 50
wloop:
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  ldi r2, n
  ld r1, [r2+0]
  sys print
  halt
`
	_, res1 := run(t, src, Config{Seed: 42})
	_, res2 := run(t, src, Config{Seed: 42})
	if res1.TotalSteps != res2.TotalSteps {
		t.Errorf("steps differ: %d vs %d", res1.TotalSteps, res2.TotalSteps)
	}
	o1, o2 := res1.Threads[0].Output, res2.Threads[0].Output
	if len(o1) != 1 || len(o2) != 1 || o1[0] != o2[0] {
		t.Errorf("outputs differ: %v vs %v", o1, o2)
	}
}

func TestAllocFreeAndUseAfterFree(t *testing.T) {
	src := `
main:
  ldi r1, 4
  sys alloc
  mov r4, r1
  ldi r2, 7
  st [r4+2], r2
  ld r1, [r4+2]
  sys print
  mov r1, r4
  sys free
  ld r3, [r4+2]   ; use after free: faults
  halt
`
	_, res := run(t, src, Config{Seed: 1})
	t0 := res.Threads[0]
	if len(t0.Output) != 1 || t0.Output[0] != 7 {
		t.Errorf("output = %v, want [7]", t0.Output)
	}
	if t0.State != Faulted || t0.Fault == nil || t0.Fault.Kind != FaultUseAfterFree {
		t.Errorf("state = %v, fault = %v; want use-after-free", t0.State, t0.Fault)
	}
}

func TestDoubleFree(t *testing.T) {
	src := `
main:
  ldi r1, 2
  sys alloc
  mov r4, r1
  sys free
  mov r1, r4
  sys free
  halt
`
	_, res := run(t, src, Config{Seed: 1})
	t0 := res.Threads[0]
	if t0.State != Faulted || t0.Fault.Kind != FaultBadFree {
		t.Errorf("fault = %v, want bad-free", t0.Fault)
	}
}

func TestNullAccessFaults(t *testing.T) {
	src := "main:\n  ld r1, [r0+0]\n  halt\n"
	_, res := run(t, src, Config{Seed: 1})
	t0 := res.Threads[0]
	if t0.State != Faulted || t0.Fault.Kind != FaultNullAccess {
		t.Errorf("fault = %v, want null-access", t0.Fault)
	}
}

func TestDivZeroFaults(t *testing.T) {
	src := "main:\n  ldi r1, 5\n  div r2, r1, r0\n  halt\n"
	_, res := run(t, src, Config{Seed: 1})
	if f := res.Threads[0].Fault; f == nil || f.Kind != FaultDivZero {
		t.Errorf("fault = %v, want div-by-zero", f)
	}
}

func TestBadIndirectJumpFaults(t *testing.T) {
	src := "main:\n  ldi r1, 12345\n  jmpr r1\n  halt\n"
	_, res := run(t, src, Config{Seed: 1})
	if f := res.Threads[0].Fault; f == nil || f.Kind != FaultBadJump {
		t.Errorf("fault = %v, want bad-jump", f)
	}
}

func TestUnheldUnlockFaults(t *testing.T) {
	src := ".word mu 0\nmain:\n  ldi r1, mu\n  unlock [r1+0]\n  halt\n"
	_, res := run(t, src, Config{Seed: 1})
	if f := res.Threads[0].Fault; f == nil || f.Kind != FaultUnheldUnlock {
		t.Errorf("fault = %v, want unheld-unlock", f)
	}
}

func TestSelfJoinFaults(t *testing.T) {
	src := "main:\n  ldi r1, 0\n  sys join\n  halt\n"
	_, res := run(t, src, Config{Seed: 1})
	if f := res.Threads[0].Fault; f == nil || f.Kind != FaultBadJoin {
		t.Errorf("fault = %v, want bad-join", f)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Thread re-acquires a lock it already holds: non-reentrant, so the
	// machine must report deadlock.
	src := `
.word mu 0
main:
  ldi r1, mu
  lock [r1+0]
  lock [r1+0]
  halt
`
	_, res := run(t, src, Config{Seed: 1})
	if !res.Deadlocked {
		t.Error("self-deadlock not detected")
	}
}

func TestAtomicXaddIsAtomic(t *testing.T) {
	// The racy-counter test loses updates; with xadd it must not.
	src := `
.entry main
.word n 0
worker:
  ldi r2, 300
  ldi r3, 1
wloop:
  ldi r4, n
  xadd r5, [r4+0], r3
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  ldi r2, n
  ld r1, [r2+0]
  sys print
  halt
`
	for _, seed := range []int64{1, 5, 9} {
		_, res := run(t, src, Config{Seed: seed})
		if out := res.Threads[0].Output; len(out) != 1 || out[0] != 600 {
			t.Errorf("seed %d: output = %v, want [600]", seed, out)
		}
	}
}

func TestCasLoop(t *testing.T) {
	src := `
.entry main
.word n 0
worker:
  ldi r2, 100
wloop:
  ldi r4, n
retry:
  ld r5, [r4+0]      ; racy read of current value
  addi r6, r5, 1
  mov r7, r5
  cas r7, [r4+0], r6 ; succeed only if unchanged
  bne r7, r5, retry
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, worker
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  ldi r2, n
  ld r1, [r2+0]
  sys print
  halt
`
	_, res := run(t, src, Config{Seed: 3})
	if out := res.Threads[0].Output; len(out) != 1 || out[0] != 200 {
		t.Errorf("output = %v, want [200]", out)
	}
}

func TestSysRandDeterministicPerSeed(t *testing.T) {
	src := "main:\n  sys rand\n  sys print\n  halt\n"
	_, r1 := run(t, src, Config{Seed: 5})
	_, r2 := run(t, src, Config{Seed: 5})
	_, r3 := run(t, src, Config{Seed: 6})
	a, b, c := r1.Threads[0].Output[0], r2.Threads[0].Output[0], r3.Threads[0].Output[0]
	if a != b {
		t.Errorf("same seed, different rand: %d vs %d", a, b)
	}
	if a == c {
		t.Errorf("different seeds, same rand: %d", a)
	}
}

func TestStepBudgetStopsRunaway(t *testing.T) {
	src := "main:\n  jmp main\n"
	_, res := run(t, src, Config{Seed: 1, MaxSteps: 1000})
	if res.TotalSteps < 1000 {
		t.Errorf("steps = %d, want to hit the 1000 budget", res.TotalSteps)
	}
	if res.Threads[0].State.Terminated() {
		t.Error("runaway thread should still be runnable at budget exhaustion")
	}
}

func TestGettidAndTime(t *testing.T) {
	src := `
main:
  sys gettid
  sys print
  sys time
  sys print
  halt
`
	_, res := run(t, src, Config{Seed: 1})
	out := res.Threads[0].Output
	if len(out) != 2 || out[0] != 0 {
		t.Fatalf("output = %v", out)
	}
	if out[1] <= 0 {
		t.Errorf("virtual time = %d, want > 0", out[1])
	}
}

type countingObserver struct {
	loads, stores, seqs, started, ended, sysrets int
	atomicLoads                                  int
	seqTS                                        []uint64
}

func (c *countingObserver) ThreadStarted(t *Thread, ts uint64) { c.started++ }
func (c *countingObserver) ThreadEnded(t *Thread, ts uint64)   { c.ended++ }
func (c *countingObserver) Load(tid int, idx uint64, pc int, addr, val uint64, atomic bool) {
	c.loads++
	if atomic {
		c.atomicLoads++
	}
}
func (c *countingObserver) Store(tid int, idx uint64, pc int, addr, val uint64, atomic bool) {
	c.stores++
}
func (c *countingObserver) Sequencer(tid int, idx uint64, ts uint64, op isa.Op, sysNum int64) {
	c.seqs++
	c.seqTS = append(c.seqTS, ts)
}
func (c *countingObserver) SyscallRet(tid int, idx uint64, r0 uint64) { c.sysrets++ }

func TestObserverEvents(t *testing.T) {
	src := `
.word n 0
main:
  ldi r2, n
  ld r3, [r2+0]
  addi r3, r3, 1
  st [r2+0], r3
  ldi r4, 1
  xadd r5, [r2+0], r4
  fence
  sys sysnop
  halt
`
	obs := &countingObserver{}
	_, res := run(t, src, Config{Seed: 1, Observer: obs})
	if res.Threads[0].State != Halted {
		t.Fatalf("fault: %v", res.Threads[0].Fault)
	}
	if obs.started != 1 || obs.ended != 1 {
		t.Errorf("started/ended = %d/%d, want 1/1", obs.started, obs.ended)
	}
	// ld + xadd-load
	if obs.loads != 2 || obs.atomicLoads != 1 {
		t.Errorf("loads = %d (atomic %d), want 2 (1)", obs.loads, obs.atomicLoads)
	}
	// st + xadd-store
	if obs.stores != 2 {
		t.Errorf("stores = %d, want 2", obs.stores)
	}
	// xadd, fence, sysnop
	if obs.seqs != 3 {
		t.Errorf("sequencers = %d, want 3", obs.seqs)
	}
	for i := 1; i < len(obs.seqTS); i++ {
		if obs.seqTS[i] <= obs.seqTS[i-1] {
			t.Errorf("sequencer timestamps not strictly increasing: %v", obs.seqTS)
		}
	}
	if obs.sysrets != 1 {
		t.Errorf("syscall returns = %d, want 1", obs.sysrets)
	}
}

func TestChildStartTSOrdersAfterParentWrites(t *testing.T) {
	src := `
.entry main
.word cell 0
child:
  ldi r1, 0
  sys exit
main:
  ldi r2, cell
  ldi r3, 9
  st [r2+0], r3
  ldi r1, child
  ldi r2, 0
  sys spawn
  sys join
  halt
`
	prog, err := asm.Assemble("ts", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	child := m.Threads()[1]
	if child.StartTS == 0 {
		t.Error("child StartTS should be the parent's spawn sequencer, not 0")
	}
	if child.EndTS <= child.StartTS {
		t.Errorf("child EndTS %d should exceed StartTS %d", child.EndTS, child.StartTS)
	}
}

func TestOOMFaults(t *testing.T) {
	src := `
main:
  ldi r1, 100
  sys alloc
  halt
`
	prog, err := asm.Assemble("oom", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(prog, Config{Seed: 1, MaxHeapWords: 10})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if f := res.Threads[0].Fault; f == nil || f.Kind != FaultOOM {
		t.Errorf("fault = %v, want out-of-memory", f)
	}
}

func TestMemoryBlocksTable(t *testing.T) {
	m := NewMemory(0)
	a, f := m.Alloc(4, 0)
	if f != nil {
		t.Fatal(f)
	}
	b, _ := m.Alloc(2, 0)
	if got := m.Blocks(); len(got) != 2 || got[0].Base != a || got[1].Base != b {
		t.Errorf("blocks = %v", got)
	}
	if err := m.Free(a, 0); err != nil {
		t.Fatal(err)
	}
	if !m.Poisoned(a) || !m.Poisoned(a+3) {
		t.Error("freed words should be poisoned")
	}
	if m.Poisoned(b) {
		t.Error("live block should not be poisoned")
	}
	if got := m.Blocks(); len(got) != 1 || got[0].Base != b {
		t.Errorf("blocks after free = %v", got)
	}
}

func TestEmptyProgramRejected(t *testing.T) {
	p := isa.NewProgram("empty")
	if _, err := New(p, Config{}); err == nil {
		t.Error("empty program accepted")
	}
}
