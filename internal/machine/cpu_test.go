package machine

import (
	"testing"

	"repro/internal/isa"
)

// fakeEnv is a minimal Env over a plain map, for Step unit tests.
type fakeEnv struct {
	mem      map[uint64]uint64
	locked   map[uint64]bool
	blockOn  bool
	sysCalls []int64
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{mem: make(map[uint64]uint64), locked: make(map[uint64]bool)}
}

func (e *fakeEnv) Load(addr uint64, atomic bool, pc int) (uint64, *Fault) {
	return e.mem[addr], nil
}
func (e *fakeEnv) Store(addr, val uint64, atomic bool, pc int) *Fault {
	e.mem[addr] = val
	return nil
}
func (e *fakeEnv) Lock(addr uint64, pc int) (bool, *Fault) {
	if e.blockOn {
		return true, nil
	}
	e.locked[addr] = true
	return false, nil
}
func (e *fakeEnv) Unlock(addr uint64, pc int) *Fault {
	delete(e.locked, addr)
	return nil
}
func (e *fakeEnv) Syscall(cpu *Cpu, num int64, pc int) (SysOutcome, *Fault) {
	e.sysCalls = append(e.sysCalls, num)
	if num == isa.SysExit {
		return SysExited, nil
	}
	cpu.Regs[1] = 7
	return SysDone, nil
}

// step1 executes a single instruction with the given initial registers.
func step1(t *testing.T, ins isa.Instr, regs map[int]uint64, env Env) (Cpu, Outcome, *Fault) {
	t.Helper()
	var cpu Cpu
	for i, v := range regs {
		cpu.Regs[i] = v
	}
	code := []isa.Instr{ins, {Op: isa.OpHalt}}
	out, f := Step(&cpu, code, env)
	return cpu, out, f
}

func TestStepALUSemantics(t *testing.T) {
	cases := []struct {
		name string
		ins  isa.Instr
		in   map[int]uint64
		reg  int
		want uint64
	}{
		{"ldi", isa.Instr{Op: isa.OpLdi, Rd: 1, Imm: -7}, nil, 1, ^uint64(6)},
		{"mov", isa.Instr{Op: isa.OpMov, Rd: 1, Rs1: 2}, map[int]uint64{2: 9}, 1, 9},
		{"add", isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, map[int]uint64{2: 4, 3: 5}, 1, 9},
		{"sub", isa.Instr{Op: isa.OpSub, Rd: 1, Rs1: 2, Rs2: 3}, map[int]uint64{2: 4, 3: 5}, 1, ^uint64(0)},
		{"mul", isa.Instr{Op: isa.OpMul, Rd: 1, Rs1: 2, Rs2: 3}, map[int]uint64{2: 6, 3: 7}, 1, 42},
		{"div", isa.Instr{Op: isa.OpDiv, Rd: 1, Rs1: 2, Rs2: 3}, map[int]uint64{2: 42, 3: 5}, 1, 8},
		{"div-neg", isa.Instr{Op: isa.OpDiv, Rd: 1, Rs1: 2, Rs2: 3}, map[int]uint64{2: ^uint64(41), 3: 5}, 1, ^uint64(7)},
		{"mod", isa.Instr{Op: isa.OpMod, Rd: 1, Rs1: 2, Rs2: 3}, map[int]uint64{2: 42, 3: 5}, 1, 2},
		{"and", isa.Instr{Op: isa.OpAnd, Rd: 1, Rs1: 2, Rs2: 3}, map[int]uint64{2: 0b1100, 3: 0b1010}, 1, 0b1000},
		{"or", isa.Instr{Op: isa.OpOr, Rd: 1, Rs1: 2, Rs2: 3}, map[int]uint64{2: 0b1100, 3: 0b1010}, 1, 0b1110},
		{"xor", isa.Instr{Op: isa.OpXor, Rd: 1, Rs1: 2, Rs2: 3}, map[int]uint64{2: 0b1100, 3: 0b1010}, 1, 0b0110},
		{"shl", isa.Instr{Op: isa.OpShl, Rd: 1, Rs1: 2, Rs2: 3}, map[int]uint64{2: 3, 3: 4}, 1, 48},
		{"shl-mask", isa.Instr{Op: isa.OpShl, Rd: 1, Rs1: 2, Rs2: 3}, map[int]uint64{2: 1, 3: 65}, 1, 2},
		{"shr", isa.Instr{Op: isa.OpShr, Rd: 1, Rs1: 2, Rs2: 3}, map[int]uint64{2: 48, 3: 4}, 1, 3},
		{"addi", isa.Instr{Op: isa.OpAddi, Rd: 1, Rs1: 2, Imm: -1}, map[int]uint64{2: 5}, 1, 4},
		{"muli", isa.Instr{Op: isa.OpMuli, Rd: 1, Rs1: 2, Imm: 3}, map[int]uint64{2: 5}, 1, 15},
		{"andi", isa.Instr{Op: isa.OpAndi, Rd: 1, Rs1: 2, Imm: 6}, map[int]uint64{2: 5}, 1, 4},
		{"ori", isa.Instr{Op: isa.OpOri, Rd: 1, Rs1: 2, Imm: 6}, map[int]uint64{2: 5}, 1, 7},
		{"xori", isa.Instr{Op: isa.OpXori, Rd: 1, Rs1: 2, Imm: 6}, map[int]uint64{2: 5}, 1, 3},
		{"shli", isa.Instr{Op: isa.OpShli, Rd: 1, Rs1: 2, Imm: 2}, map[int]uint64{2: 5}, 1, 20},
		{"shri", isa.Instr{Op: isa.OpShri, Rd: 1, Rs1: 2, Imm: 2}, map[int]uint64{2: 20}, 1, 5},
		{"not", isa.Instr{Op: isa.OpNot, Rd: 1, Rs1: 2}, map[int]uint64{2: 0}, 1, ^uint64(0)},
		{"neg", isa.Instr{Op: isa.OpNeg, Rd: 1, Rs1: 2}, map[int]uint64{2: 1}, 1, ^uint64(0)},
		{"zero-reg-write", isa.Instr{Op: isa.OpLdi, Rd: 0, Imm: 5}, nil, 0, 5}, // visible until next Step clears it
	}
	for _, c := range cases {
		cpu, out, f := step1(t, c.ins, c.in, newFakeEnv())
		if f != nil || out != StepContinue {
			t.Errorf("%s: out=%v fault=%v", c.name, out, f)
			continue
		}
		if got := cpu.Regs[c.reg]; got != c.want {
			t.Errorf("%s: r%d = %d, want %d", c.name, c.reg, got, c.want)
		}
		if cpu.PC != 1 {
			t.Errorf("%s: pc = %d, want 1", c.name, cpu.PC)
		}
	}
}

func TestStepBranchSemantics(t *testing.T) {
	cases := []struct {
		name  string
		ins   isa.Instr
		in    map[int]uint64
		taken bool
	}{
		{"beq-taken", isa.Instr{Op: isa.OpBeq, Rs1: 1, Rs2: 2, Imm: 1}, map[int]uint64{1: 5, 2: 5}, true},
		{"beq-not", isa.Instr{Op: isa.OpBeq, Rs1: 1, Rs2: 2, Imm: 1}, map[int]uint64{1: 5, 2: 6}, false},
		{"bne-taken", isa.Instr{Op: isa.OpBne, Rs1: 1, Rs2: 2, Imm: 1}, map[int]uint64{1: 5, 2: 6}, true},
		{"blt-signed", isa.Instr{Op: isa.OpBlt, Rs1: 1, Rs2: 2, Imm: 1}, map[int]uint64{1: ^uint64(0), 2: 0}, true},
		{"bge-signed", isa.Instr{Op: isa.OpBge, Rs1: 1, Rs2: 2, Imm: 1}, map[int]uint64{1: 0, 2: ^uint64(0)}, true},
		{"bltu-unsigned", isa.Instr{Op: isa.OpBltu, Rs1: 1, Rs2: 2, Imm: 1}, map[int]uint64{1: ^uint64(0), 2: 0}, false},
		{"bgeu-unsigned", isa.Instr{Op: isa.OpBgeu, Rs1: 1, Rs2: 2, Imm: 1}, map[int]uint64{1: ^uint64(0), 2: 0}, true},
		{"jmp", isa.Instr{Op: isa.OpJmp, Imm: 1}, nil, true},
	}
	for _, c := range cases {
		cpu, out, f := step1(t, c.ins, c.in, newFakeEnv())
		if f != nil || out != StepContinue {
			t.Errorf("%s: out=%v fault=%v", c.name, out, f)
			continue
		}
		wantPC := 1
		_ = wantPC
		if got := cpu.PC; (got == 1) != true {
			// both targets are 1 here; taken-ness is observed via fall-through
			// being impossible — use a 3-instruction variant instead below.
			t.Errorf("%s: pc = %d", c.name, got)
		}
		_ = c.taken
	}

	// Distinguish taken/not-taken with target 0 (self) vs fall-through 1.
	takenCases := map[string]struct {
		ins   isa.Instr
		in    map[int]uint64
		taken bool
	}{
		"blt-not-taken-unsigned-big": {isa.Instr{Op: isa.OpBlt, Rs1: 1, Rs2: 2, Imm: 0}, map[int]uint64{1: 0, 2: ^uint64(0)}, false},
		"bltu-taken":                 {isa.Instr{Op: isa.OpBltu, Rs1: 1, Rs2: 2, Imm: 0}, map[int]uint64{1: 1, 2: 2}, true},
		"bgeu-not":                   {isa.Instr{Op: isa.OpBgeu, Rs1: 1, Rs2: 2, Imm: 0}, map[int]uint64{1: 1, 2: 2}, false},
	}
	for name, c := range takenCases {
		cpu, _, f := step1(t, c.ins, c.in, newFakeEnv())
		if f != nil {
			t.Errorf("%s: fault %v", name, f)
			continue
		}
		wantPC := 1
		if c.taken {
			wantPC = 0
		}
		if cpu.PC != wantPC {
			t.Errorf("%s: pc = %d, want %d", name, cpu.PC, wantPC)
		}
	}
}

func TestStepMemoryAndAtomics(t *testing.T) {
	env := newFakeEnv()
	env.mem[100] = 5

	cpu, _, _ := step1(t, isa.Instr{Op: isa.OpLd, Rd: 1, Rs1: 2, Imm: 90}, map[int]uint64{2: 10}, env)
	if cpu.Regs[1] != 5 {
		t.Errorf("ld = %d", cpu.Regs[1])
	}

	step1(t, isa.Instr{Op: isa.OpSt, Rs1: 2, Rs2: 3, Imm: 0}, map[int]uint64{2: 200, 3: 9}, env)
	if env.mem[200] != 9 {
		t.Errorf("st wrote %d", env.mem[200])
	}

	// cas success / failure
	env.mem[300] = 7
	cpu, _, _ = step1(t, isa.Instr{Op: isa.OpCas, Rd: 1, Rs1: 2, Rs2: 3}, map[int]uint64{1: 7, 2: 300, 3: 8}, env)
	if env.mem[300] != 8 || cpu.Regs[1] != 7 {
		t.Errorf("cas success: mem=%d rd=%d", env.mem[300], cpu.Regs[1])
	}
	cpu, _, _ = step1(t, isa.Instr{Op: isa.OpCas, Rd: 1, Rs1: 2, Rs2: 3}, map[int]uint64{1: 7, 2: 300, 3: 9}, env)
	if env.mem[300] != 8 || cpu.Regs[1] != 8 {
		t.Errorf("cas failure: mem=%d rd=%d", env.mem[300], cpu.Regs[1])
	}

	// xchg
	cpu, _, _ = step1(t, isa.Instr{Op: isa.OpXchg, Rd: 1, Rs1: 2, Rs2: 3}, map[int]uint64{2: 300, 3: 11}, env)
	if env.mem[300] != 11 || cpu.Regs[1] != 8 {
		t.Errorf("xchg: mem=%d rd=%d", env.mem[300], cpu.Regs[1])
	}

	// rmw family
	env.mem[400] = 0b1100
	step1(t, isa.Instr{Op: isa.OpOrm, Rs1: 2, Rs2: 3}, map[int]uint64{2: 400, 3: 0b0011}, env)
	if env.mem[400] != 0b1111 {
		t.Errorf("orm: %b", env.mem[400])
	}
	step1(t, isa.Instr{Op: isa.OpAndm, Rs1: 2, Rs2: 3}, map[int]uint64{2: 400, 3: 0b0110}, env)
	if env.mem[400] != 0b0110 {
		t.Errorf("andm: %b", env.mem[400])
	}
	step1(t, isa.Instr{Op: isa.OpXorm, Rs1: 2, Rs2: 3}, map[int]uint64{2: 400, 3: 0b0101}, env)
	if env.mem[400] != 0b0011 {
		t.Errorf("xorm: %b", env.mem[400])
	}
	step1(t, isa.Instr{Op: isa.OpAddm, Rs1: 2, Rs2: 3}, map[int]uint64{2: 400, 3: 7}, env)
	if env.mem[400] != 10 {
		t.Errorf("addm: %d", env.mem[400])
	}
}

func TestStepCallRetAndIndirect(t *testing.T) {
	env := newFakeEnv()
	var cpu Cpu
	cpu.Regs[isa.SP] = 1000
	code := []isa.Instr{
		{Op: isa.OpCall, Imm: 2},
		{Op: isa.OpHalt},
		{Op: isa.OpRet},
	}
	if out, f := Step(&cpu, code, env); out != StepContinue || f != nil {
		t.Fatalf("call: %v %v", out, f)
	}
	if cpu.PC != 2 || cpu.Regs[isa.SP] != 999 || env.mem[999] != 1 {
		t.Fatalf("call state: pc=%d sp=%d ret=%d", cpu.PC, cpu.Regs[isa.SP], env.mem[999])
	}
	if out, f := Step(&cpu, code, env); out != StepContinue || f != nil {
		t.Fatalf("ret: %v %v", out, f)
	}
	if cpu.PC != 1 || cpu.Regs[isa.SP] != 1000 {
		t.Fatalf("ret state: pc=%d sp=%d", cpu.PC, cpu.Regs[isa.SP])
	}

	// Indirect jump to a valid target.
	cpu = Cpu{}
	cpu.Regs[1] = 1
	if _, f := Step(&cpu, []isa.Instr{{Op: isa.OpJmpr, Rs1: 1}, {Op: isa.OpHalt}}, env); f != nil {
		t.Fatalf("jmpr: %v", f)
	}
	if cpu.PC != 1 {
		t.Fatalf("jmpr pc = %d", cpu.PC)
	}

	// Ret to garbage faults.
	cpu = Cpu{}
	cpu.Regs[isa.SP] = 500
	env.mem[500] = 999999
	if _, f := Step(&cpu, []isa.Instr{{Op: isa.OpRet}}, env); f == nil || f.Kind != FaultBadJump {
		t.Fatalf("ret to garbage: %v", f)
	}
}

func TestStepBlockedAndSyscalls(t *testing.T) {
	env := newFakeEnv()
	env.blockOn = true
	cpu, out, f := step1(t, isa.Instr{Op: isa.OpLock, Rs1: 2}, map[int]uint64{2: 100}, env)
	if f != nil || out != StepBlocked {
		t.Fatalf("blocked lock: %v %v", out, f)
	}
	if cpu.PC != 0 {
		t.Error("blocked instruction must not advance pc")
	}

	env.blockOn = false
	_, out, _ = step1(t, isa.Instr{Op: isa.OpLock, Rs1: 2}, map[int]uint64{2: 100}, env)
	if out != StepContinue || !env.locked[100] {
		t.Error("lock acquire failed")
	}
	_, out, _ = step1(t, isa.Instr{Op: isa.OpUnlock, Rs1: 2}, map[int]uint64{2: 100}, env)
	if out != StepContinue {
		t.Error("unlock failed")
	}

	_, out, _ = step1(t, isa.Instr{Op: isa.OpSys, Imm: isa.SysExit}, nil, env)
	if out != StepExited {
		t.Errorf("exit: %v", out)
	}
	cpu, out, _ = step1(t, isa.Instr{Op: isa.OpSys, Imm: isa.SysGettid}, nil, env)
	if out != StepContinue || cpu.Regs[1] != 7 {
		t.Errorf("syscall result injection: %v r1=%d", out, cpu.Regs[1])
	}
}

func TestStepOutOfCodeFaults(t *testing.T) {
	var cpu Cpu
	cpu.PC = 5
	if out, f := Step(&cpu, []isa.Instr{{Op: isa.OpNop}}, newFakeEnv()); out != StepFault || f.Kind != FaultBadJump {
		t.Errorf("pc out of code: %v %v", out, f)
	}
}

func TestFaultAndStateStrings(t *testing.T) {
	f := &Fault{Kind: FaultNullAccess, PC: 3, Addr: 0x2}
	if f.Error() == "" || (&Fault{Kind: FaultDivZero, PC: 1}).Error() == "" {
		t.Error("fault strings empty")
	}
	var nilF *Fault
	if nilF.Error() != "<no fault>" {
		t.Error("nil fault string")
	}
	for k := FaultNone; k <= FaultOOM; k++ {
		if k.String() == "" {
			t.Errorf("fault kind %d unnamed", k)
		}
	}
	for s := Runnable; s <= Faulted; s++ {
		if s.String() == "" {
			t.Errorf("state %d unnamed", s)
		}
	}
}

func TestMemoryAccessors(t *testing.T) {
	m := NewMemory(0)
	m.Poke(0x5000, 42)
	if m.Peek(0x5000) != 42 {
		t.Error("peek/poke")
	}
	base, f := m.Alloc(3, 0)
	if f != nil {
		t.Fatal(f)
	}
	if n, ok := m.BlockSize(base); !ok || n != 3 {
		t.Errorf("BlockSize = %d,%v", n, ok)
	}
	if _, ok := m.BlockSize(0x9999); ok {
		t.Error("phantom block")
	}
	// Page-boundary write/read.
	edge := uint64(pageWords - 1)
	m.Poke(edge, 1)
	m.Poke(edge+1, 2)
	if m.Peek(edge) != 1 || m.Peek(edge+1) != 2 {
		t.Error("page boundary")
	}
}

func TestMachineAccessors(t *testing.T) {
	prog := mustProg(t, "main:\n  fence\n  halt\n")
	m, err := New(prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	if m.Mem() == nil || len(m.Threads()) != 1 {
		t.Error("accessors broken")
	}
	if m.Clock() == 0 {
		t.Error("clock never ticked despite fence")
	}
}
