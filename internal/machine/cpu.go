package machine

import "repro/internal/isa"

// Cpu is the architectural state of one hardware context: the register
// file and the program counter. It is shared by the live machine, the
// replayer, and the classification virtual processor.
type Cpu struct {
	Regs [isa.NumRegs]uint64
	PC   int
}

// SysOutcome reports how a system call resolved.
type SysOutcome int

const (
	SysDone    SysOutcome = iota // completed; fall through to the next instruction
	SysBlocked                   // cannot complete yet; retry the instruction later
	SysExited                    // the calling thread terminated
)

// Env supplies the environment an executing instruction stream interacts
// with: data memory, mutexes, and system calls. The atomic flag marks
// accesses made by lock-prefixed instructions — they are synchronization,
// not data, and the race detector must ignore them.
type Env interface {
	Load(addr uint64, atomic bool, pc int) (uint64, *Fault)
	Store(addr, val uint64, atomic bool, pc int) *Fault
	Lock(addr uint64, pc int) (blocked bool, f *Fault)
	Unlock(addr uint64, pc int) *Fault
	Syscall(cpu *Cpu, num int64, pc int) (SysOutcome, *Fault)
}

// Outcome is the result of executing (or attempting) one instruction.
type Outcome int

const (
	StepContinue Outcome = iota // instruction retired
	StepHalt                    // OpHalt retired; thread is done
	StepBlocked                 // no side effects; retry the same pc later
	StepExited                  // sys exit retired; thread is done
	StepFault                   // thread crashed (fault describes why)
)

// Step executes the instruction at cpu.PC against env. On StepBlocked the
// cpu is unchanged and the instruction did not retire; every other outcome
// retires exactly one instruction. Instructions execute atomically with
// respect to other threads because the scheduler interleaves whole
// instructions — which is what makes lock-prefixed RMW ops atomic without
// any extra machinery.
func Step(cpu *Cpu, code []isa.Instr, env Env) (Outcome, *Fault) {
	if cpu.PC < 0 || cpu.PC >= len(code) {
		return StepFault, &Fault{Kind: FaultBadJump, PC: cpu.PC}
	}
	// r0 is hardwired to zero: clearing it on entry makes every read of r0
	// within this instruction see zero, and any write to it from the
	// previous instruction vanish.
	cpu.Regs[isa.Zero] = 0
	ins := code[cpu.PC]
	r := &cpu.Regs
	pc := cpu.PC
	next := pc + 1

	switch ins.Op {
	case isa.OpNop:
	case isa.OpHalt:
		cpu.PC = next
		return StepHalt, nil

	case isa.OpLdi:
		r[ins.Rd] = uint64(ins.Imm)
	case isa.OpMov:
		r[ins.Rd] = r[ins.Rs1]

	case isa.OpAdd:
		r[ins.Rd] = r[ins.Rs1] + r[ins.Rs2]
	case isa.OpSub:
		r[ins.Rd] = r[ins.Rs1] - r[ins.Rs2]
	case isa.OpMul:
		r[ins.Rd] = r[ins.Rs1] * r[ins.Rs2]
	case isa.OpDiv:
		if r[ins.Rs2] == 0 {
			return StepFault, &Fault{Kind: FaultDivZero, PC: pc}
		}
		r[ins.Rd] = uint64(int64(r[ins.Rs1]) / int64(r[ins.Rs2]))
	case isa.OpMod:
		if r[ins.Rs2] == 0 {
			return StepFault, &Fault{Kind: FaultDivZero, PC: pc}
		}
		r[ins.Rd] = uint64(int64(r[ins.Rs1]) % int64(r[ins.Rs2]))
	case isa.OpAnd:
		r[ins.Rd] = r[ins.Rs1] & r[ins.Rs2]
	case isa.OpOr:
		r[ins.Rd] = r[ins.Rs1] | r[ins.Rs2]
	case isa.OpXor:
		r[ins.Rd] = r[ins.Rs1] ^ r[ins.Rs2]
	case isa.OpShl:
		r[ins.Rd] = r[ins.Rs1] << (r[ins.Rs2] & 63)
	case isa.OpShr:
		r[ins.Rd] = r[ins.Rs1] >> (r[ins.Rs2] & 63)

	case isa.OpAddi:
		r[ins.Rd] = r[ins.Rs1] + uint64(ins.Imm)
	case isa.OpMuli:
		r[ins.Rd] = r[ins.Rs1] * uint64(ins.Imm)
	case isa.OpAndi:
		r[ins.Rd] = r[ins.Rs1] & uint64(ins.Imm)
	case isa.OpOri:
		r[ins.Rd] = r[ins.Rs1] | uint64(ins.Imm)
	case isa.OpXori:
		r[ins.Rd] = r[ins.Rs1] ^ uint64(ins.Imm)
	case isa.OpShli:
		r[ins.Rd] = r[ins.Rs1] << (uint64(ins.Imm) & 63)
	case isa.OpShri:
		r[ins.Rd] = r[ins.Rs1] >> (uint64(ins.Imm) & 63)

	case isa.OpNot:
		r[ins.Rd] = ^r[ins.Rs1]
	case isa.OpNeg:
		r[ins.Rd] = -r[ins.Rs1]

	case isa.OpLd:
		v, f := env.Load(r[ins.Rs1]+uint64(ins.Imm), false, pc)
		if f != nil {
			return StepFault, f
		}
		r[ins.Rd] = v
	case isa.OpSt:
		if f := env.Store(r[ins.Rs1]+uint64(ins.Imm), r[ins.Rs2], false, pc); f != nil {
			return StepFault, f
		}

	case isa.OpBeq:
		if r[ins.Rs1] == r[ins.Rs2] {
			next = int(ins.Imm)
		}
	case isa.OpBne:
		if r[ins.Rs1] != r[ins.Rs2] {
			next = int(ins.Imm)
		}
	case isa.OpBlt:
		if int64(r[ins.Rs1]) < int64(r[ins.Rs2]) {
			next = int(ins.Imm)
		}
	case isa.OpBge:
		if int64(r[ins.Rs1]) >= int64(r[ins.Rs2]) {
			next = int(ins.Imm)
		}
	case isa.OpBltu:
		if r[ins.Rs1] < r[ins.Rs2] {
			next = int(ins.Imm)
		}
	case isa.OpBgeu:
		if r[ins.Rs1] >= r[ins.Rs2] {
			next = int(ins.Imm)
		}
	case isa.OpJmp:
		next = int(ins.Imm)
	case isa.OpJmpr:
		t := int(int64(r[ins.Rs1]))
		if t < 0 || t >= len(code) {
			return StepFault, &Fault{Kind: FaultBadJump, PC: pc, Addr: r[ins.Rs1]}
		}
		next = t
	case isa.OpCall:
		sp := r[isa.SP] - 1
		if f := env.Store(sp, uint64(next), false, pc); f != nil {
			return StepFault, f
		}
		r[isa.SP] = sp
		next = int(ins.Imm)
	case isa.OpRet:
		v, f := env.Load(r[isa.SP], false, pc)
		if f != nil {
			return StepFault, f
		}
		t := int(int64(v))
		if t < 0 || t >= len(code) {
			return StepFault, &Fault{Kind: FaultBadJump, PC: pc, Addr: v}
		}
		r[isa.SP]++
		next = t

	case isa.OpCas:
		ea := r[ins.Rs1] + uint64(ins.Imm)
		old, f := env.Load(ea, true, pc)
		if f != nil {
			return StepFault, f
		}
		if old == r[ins.Rd] {
			if f := env.Store(ea, r[ins.Rs2], true, pc); f != nil {
				return StepFault, f
			}
		}
		r[ins.Rd] = old
	case isa.OpXadd:
		ea := r[ins.Rs1] + uint64(ins.Imm)
		old, f := env.Load(ea, true, pc)
		if f != nil {
			return StepFault, f
		}
		if f := env.Store(ea, old+r[ins.Rs2], true, pc); f != nil {
			return StepFault, f
		}
		r[ins.Rd] = old
	case isa.OpXchg:
		ea := r[ins.Rs1] + uint64(ins.Imm)
		old, f := env.Load(ea, true, pc)
		if f != nil {
			return StepFault, f
		}
		if f := env.Store(ea, r[ins.Rs2], true, pc); f != nil {
			return StepFault, f
		}
		r[ins.Rd] = old
	case isa.OpOrm, isa.OpAndm, isa.OpXorm, isa.OpAddm:
		ea := r[ins.Rs1] + uint64(ins.Imm)
		v, f := env.Load(ea, false, pc)
		if f != nil {
			return StepFault, f
		}
		switch ins.Op {
		case isa.OpOrm:
			v |= r[ins.Rs2]
		case isa.OpAndm:
			v &= r[ins.Rs2]
		case isa.OpXorm:
			v ^= r[ins.Rs2]
		case isa.OpAddm:
			v += r[ins.Rs2]
		}
		if f := env.Store(ea, v, false, pc); f != nil {
			return StepFault, f
		}

	case isa.OpFence:
		// Pure ordering: the sequencer the machine logs after this retires
		// is its whole effect.

	case isa.OpLock:
		blocked, f := env.Lock(r[ins.Rs1]+uint64(ins.Imm), pc)
		if f != nil {
			return StepFault, f
		}
		if blocked {
			return StepBlocked, nil
		}
	case isa.OpUnlock:
		if f := env.Unlock(r[ins.Rs1]+uint64(ins.Imm), pc); f != nil {
			return StepFault, f
		}

	case isa.OpSys:
		out, f := env.Syscall(cpu, ins.Imm, pc)
		if f != nil {
			return StepFault, f
		}
		switch out {
		case SysBlocked:
			return StepBlocked, nil
		case SysExited:
			cpu.PC = next
			return StepExited, nil
		}

	default:
		return StepFault, &Fault{Kind: FaultInvalidOp, PC: pc}
	}

	cpu.PC = next
	return StepContinue, nil
}
