package machine

import "fmt"

// SchedPolicy selects the scheduler strategy used to interleave threads.
// The recorded interleaving determines which races (and which instances)
// a dynamic analysis can see, so the policy is the coverage knob of the
// whole pipeline — the paper relies on stress testing (its executions
// came from stress-tested builds); PCT-style priority scheduling is the
// standard systematic alternative.
type SchedPolicy int

const (
	// PolicyRandom picks a uniformly random runnable thread per quantum
	// (the default; a seeded stand-in for stress-test noise).
	PolicyRandom SchedPolicy = iota
	// PolicyRoundRobin cycles runnable threads in id order with a fixed
	// quantum — the most regular interleaving, exposing the fewest races.
	PolicyRoundRobin
	// PolicyPCT approximates the PCT algorithm (Burckhardt et al.): each
	// thread gets a random priority, the highest-priority runnable thread
	// always runs, and at a few random points in the execution the
	// running thread's priority is demoted below everyone else's. Good at
	// exposing ordering bugs with few schedules.
	PolicyPCT
)

func (p SchedPolicy) String() string {
	switch p {
	case PolicyRandom:
		return "random"
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyPCT:
		return "pct"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// schedState holds per-policy scheduler bookkeeping.
type schedState struct {
	rrNext      int         // round-robin cursor
	priorities  map[int]int // PCT: tid -> priority (higher runs first)
	prioNext    int         // next fresh priority to hand out
	changeAt    []uint64    // PCT: retired-instruction counts that trigger a demotion
	changeIdx   int
	demoteFloor int // PCT: priorities below every initial priority
}

// initSched prepares policy state. Only PolicyPCT consumes scheduler RNG
// here, so the other policies' schedules are unaffected by its existence
// (the RNG stream per seed stays what it always was).
func (m *Machine) initSched() {
	if m.cfg.Policy != PolicyPCT {
		return
	}
	m.ss.priorities = make(map[int]int)
	m.ss.prioNext = 1 << 20
	m.ss.demoteFloor = 0
	// Sample cfg.PCTDepth change points over the expected run length.
	depth := m.cfg.PCTDepth
	if depth <= 0 {
		depth = 3
	}
	horizon := m.cfg.PCTHorizon
	if horizon == 0 {
		horizon = 50_000
	}
	for i := 0; i < depth; i++ {
		m.ss.changeAt = append(m.ss.changeAt, uint64(m.sched.Int63n(int64(horizon))))
	}
	sortU64(m.ss.changeAt)
	m.assignPriority(0)
}

func sortU64(xs []uint64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// assignPriority gives a newly started thread a random PCT priority.
// A no-op under other policies (and must stay one: consuming scheduler
// RNG here would perturb every recorded schedule).
func (m *Machine) assignPriority(tid int) {
	if m.cfg.Policy != PolicyPCT {
		return
	}
	m.ss.priorities[tid] = m.ss.prioNext + m.sched.Intn(1<<10)
	m.ss.prioNext += 1 << 10
}

// pickPolicy chooses the next thread according to the configured policy.
// Returns nil when nothing is runnable.
func (m *Machine) pickPolicy() *Thread {
	runnable := appendRunnable(m.runBuf[:0], m.threads)
	m.runBuf = runnable
	if len(runnable) == 0 {
		for _, t := range m.threads {
			if t.State == BlockedLock || t.State == BlockedJoin {
				m.deadlock = true
			}
		}
		return nil
	}
	switch m.cfg.Policy {
	case PolicyRoundRobin:
		// Advance the cursor to the next runnable tid.
		for i := 0; i < len(m.threads); i++ {
			cand := m.threads[(m.ss.rrNext+i)%len(m.threads)]
			if cand.State == Runnable {
				m.ss.rrNext = cand.ID + 1
				return cand
			}
		}
		return runnable[0]
	case PolicyPCT:
		// Demote the highest-priority thread when a change point passed.
		for m.ss.changeIdx < len(m.ss.changeAt) && m.retired >= m.ss.changeAt[m.ss.changeIdx] {
			m.ss.changeIdx++
			if top := maxPriority(runnable, m.ss.priorities); top != nil {
				m.ss.demoteFloor--
				m.ss.priorities[top.ID] = m.ss.demoteFloor
			}
		}
		return maxPriority(runnable, m.ss.priorities)
	default:
		return runnable[m.sched.Intn(len(runnable))]
	}
}

func appendRunnable(out []*Thread, threads []*Thread) []*Thread {
	for _, t := range threads {
		if t.State == Runnable {
			out = append(out, t)
		}
	}
	return out
}

func maxPriority(threads []*Thread, prio map[int]int) *Thread {
	var best *Thread
	for _, t := range threads {
		if best == nil || prio[t.ID] > prio[best.ID] {
			best = t
		}
	}
	return best
}
