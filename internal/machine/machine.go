package machine

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
)

// ThreadState is the lifecycle state of an RVM thread.
type ThreadState int

const (
	Runnable ThreadState = iota
	BlockedLock
	BlockedJoin
	Halted  // retired OpHalt
	Exited  // retired sys exit
	Faulted // crashed
)

func (s ThreadState) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case BlockedLock:
		return "blocked-lock"
	case BlockedJoin:
		return "blocked-join"
	case Halted:
		return "halted"
	case Exited:
		return "exited"
	case Faulted:
		return "faulted"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Terminated reports whether the thread will never run again.
func (s ThreadState) Terminated() bool {
	return s == Halted || s == Exited || s == Faulted
}

// Thread is one RVM thread: architectural state plus scheduling metadata.
type Thread struct {
	ID       int
	Cpu      Cpu
	State    ThreadState
	Retired  uint64  // instructions retired by this thread
	Output   []int64 // values printed via sys print
	ExitCode uint64
	Fault    *Fault
	StartTS  uint64 // sequencer timestamp at which the thread became live
	EndTS    uint64 // sequencer timestamp at which the thread terminated

	waitAddr uint64 // lock address while BlockedLock
	waitTid  int    // target while BlockedJoin
	yield    bool
}

// Observer receives the machine's execution events. The recorder is the
// canonical implementation; all callbacks fire only for effects that
// actually happened (a faulting access produces no Load/Store event).
type Observer interface {
	// ThreadStarted fires when a thread becomes live, after its initial
	// Cpu state is final. startTS is the sequencer timestamp ordering the
	// thread's first region (the parent's spawn sequencer, or 0 for the
	// main thread).
	ThreadStarted(t *Thread, startTS uint64)
	// ThreadEnded fires when a thread terminates, with a fresh timestamp
	// closing its final region.
	ThreadEnded(t *Thread, endTS uint64)
	// Load/Store fire per successful data-memory access. idx is the index
	// of the executing instruction in the thread's retirement order, and
	// atomic marks accesses by lock-prefixed instructions.
	Load(tid int, idx uint64, pc int, addr, val uint64, atomic bool)
	Store(tid int, idx uint64, pc int, addr, val uint64, atomic bool)
	// Sequencer fires when a synchronization instruction retires; ts is
	// the global timestamp it was assigned. sysNum is the syscall number
	// for OpSys sequencers and -1 otherwise.
	Sequencer(tid int, idx uint64, ts uint64, op isa.Op, sysNum int64)
	// SyscallRet fires after a syscall retires, reporting the result
	// (which replaced r1) that the replayer must inject.
	SyscallRet(tid int, idx uint64, res uint64)
}

// KeyFramer is an optional Observer extension: AfterRetire fires after
// every retired instruction, letting a recorder place key frames at exact
// instruction boundaries. The machine detects the interface once at
// construction, so plain observers pay nothing.
type KeyFramer interface {
	AfterRetire(t *Thread)
}

// Stopper is an optional Observer extension: the machine polls
// StopRequested at scheduling-quantum boundaries and ends the run early
// when it returns true. The check sits outside the per-instruction hot
// loop, so the whole quantum that triggered the stop still retires and
// the truncation point is deterministic for a given seed. Like KeyFramer,
// the interface is detected once at construction.
type Stopper interface {
	StopRequested() bool
}

// Config controls one deterministic machine run.
type Config struct {
	Seed         int64  // scheduler seed; runs with equal Seed are identical
	EntropySeed  uint64 // sys rand stream seed (defaults to a mix of Seed)
	MaxQuantum   int    // max instructions per scheduling quantum (default 12)
	MaxSteps     uint64 // global retired-instruction budget (default 8M)
	MaxThreads   int    // spawn limit (default 64)
	MaxHeapWords uint64 // heap budget (default 1M words)
	Observer     Observer

	// Policy selects the interleaving strategy (default PolicyRandom).
	Policy SchedPolicy
	// PCTDepth is the number of priority change points for PolicyPCT
	// (default 3).
	PCTDepth int
	// PCTHorizon is the instruction-count range change points are sampled
	// from (default 50k).
	PCTHorizon uint64
}

func (c Config) withDefaults() Config {
	if c.MaxQuantum <= 0 {
		c.MaxQuantum = 12
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 8 << 20
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 64
	}
	if c.EntropySeed == 0 {
		c.EntropySeed = uint64(c.Seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	}
	return c
}

// Result summarizes a finished run.
type Result struct {
	Threads    []*Thread
	TotalSteps uint64
	Deadlocked bool
	FinalClock uint64
	Stopped    bool // a Stopper observer ended the run early
}

// Machine executes one program deterministically.
type Machine struct {
	prog     *isa.Program
	cfg      Config
	mem      *Memory
	threads  []*Thread
	locks    map[uint64]int // lock address -> holder tid
	sched    *rand.Rand
	entropy  uint64
	clock    uint64 // global sequencer timestamp
	retired  uint64 // global retired-instruction count (virtual time)
	obs      Observer
	kf       KeyFramer
	stopper  Stopper
	stopped  bool
	pendTS   uint64 // timestamp pre-allocated for the sync op in flight
	liveCnt  int
	deadlock bool
	ss       schedState
	runBuf   []*Thread // reusable runnable-thread collection buffer
}

// New builds a machine for prog. The program is validated; thread 0 is
// created at prog.Entry with its stack pointer set.
func New(prog *isa.Program, cfg Config) (*Machine, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if len(prog.Code) == 0 {
		return nil, fmt.Errorf("machine: empty program %s", prog.Name)
	}
	cfg = cfg.withDefaults()
	m := &Machine{
		prog:    prog,
		cfg:     cfg,
		mem:     NewMemory(cfg.MaxHeapWords),
		locks:   make(map[uint64]int),
		sched:   rand.New(rand.NewSource(cfg.Seed)),
		entropy: cfg.EntropySeed,
		obs:     cfg.Observer,
	}
	if kf, ok := cfg.Observer.(KeyFramer); ok {
		m.kf = kf
	}
	if st, ok := cfg.Observer.(Stopper); ok {
		m.stopper = st
	}
	m.mem.LoadInit(prog.Data)
	t0 := &Thread{ID: 0, State: Runnable}
	t0.Cpu.PC = prog.Entry
	t0.Cpu.Regs[isa.SP] = isa.StackTop(0)
	m.threads = append(m.threads, t0)
	m.liveCnt = 1
	m.initSched()
	if m.obs != nil {
		m.obs.ThreadStarted(t0, 0)
	}
	return m, nil
}

// Mem exposes the machine's memory for post-run inspection.
func (m *Machine) Mem() *Memory { return m.mem }

// Threads exposes the thread table (valid after Run).
func (m *Machine) Threads() []*Thread { return m.threads }

// Clock returns the current global sequencer timestamp.
func (m *Machine) Clock() uint64 { return m.clock }

func (m *Machine) nextTS() uint64 {
	m.clock++
	return m.clock
}

func (m *Machine) nextRand() uint64 {
	// xorshift64*: a fixed, Go-version-independent stream.
	x := m.entropy
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	m.entropy = x
	return x * 0x2545F4914F6CDD1D
}

// Run executes the program to completion (all threads terminated),
// deadlock, or the step budget. It is not restartable.
func (m *Machine) Run() *Result {
	for m.retired < m.cfg.MaxSteps {
		if m.stopper != nil && m.stopper.StopRequested() {
			m.stopped = true
			break
		}
		t := m.pick()
		if t == nil {
			break
		}
		q := 1 + m.sched.Intn(m.cfg.MaxQuantum)
		for i := 0; i < q && t.State == Runnable && m.retired < m.cfg.MaxSteps; i++ {
			m.stepThread(t)
			if t.yield {
				t.yield = false
				break
			}
		}
	}
	return &Result{
		Threads:    m.threads,
		TotalSteps: m.retired,
		Deadlocked: m.deadlock,
		FinalClock: m.clock,
		Stopped:    m.stopped,
	}
}

// pick chooses the next thread to schedule according to the configured
// policy (seeded, hence deterministic). Returns nil when no thread can
// run; that is completion if every thread terminated, deadlock otherwise.
func (m *Machine) pick() *Thread {
	return m.pickPolicy()
}

func (m *Machine) stepThread(t *Thread) {
	var ins isa.Instr
	if t.Cpu.PC >= 0 && t.Cpu.PC < len(m.prog.Code) {
		ins = m.prog.Code[t.Cpu.PC]
	}
	idx := t.Retired
	if ins.Op.IsSync() {
		// Pre-allocate the timestamp so a spawn performed inside the
		// syscall can hand it to the child as its start timestamp.
		m.pendTS = m.nextTS()
	}
	out, f := Step(&t.Cpu, m.prog.Code, threadEnv{m, t})
	switch out {
	case StepContinue:
		t.Retired++
		m.retired++
		if ins.Op.IsSync() {
			m.emitSequencer(t, idx, ins)
		}
		if m.kf != nil {
			m.kf.AfterRetire(t)
		}
	case StepHalt:
		t.Retired++
		m.retired++
		t.State = Halted
		m.endThread(t)
	case StepExited:
		t.Retired++
		m.retired++
		if ins.Op.IsSync() {
			m.emitSequencer(t, idx, ins)
		}
		t.State = Exited
		m.endThread(t)
	case StepBlocked:
		// State was set by the env (BlockedLock / BlockedJoin); the
		// pre-allocated timestamp is simply discarded, leaving a gap in
		// the clock, which is harmless.
	case StepFault:
		t.State = Faulted
		t.Fault = f
		m.endThread(t)
	}
}

func (m *Machine) emitSequencer(t *Thread, idx uint64, ins isa.Instr) {
	if m.obs == nil {
		return
	}
	sysNum := int64(-1)
	if ins.Op == isa.OpSys {
		sysNum = ins.Imm
	}
	m.obs.Sequencer(t.ID, idx, m.pendTS, ins.Op, sysNum)
}

func (m *Machine) endThread(t *Thread) {
	t.EndTS = m.nextTS()
	m.liveCnt--
	// Wake joiners.
	for _, w := range m.threads {
		if w.State == BlockedJoin && w.waitTid == t.ID {
			w.State = Runnable
		}
	}
	if m.obs != nil {
		m.obs.ThreadEnded(t, t.EndTS)
	}
}

// threadEnv adapts the machine to the Env interface for one thread.
type threadEnv struct {
	m *Machine
	t *Thread
}

func (e threadEnv) Load(addr uint64, atomic bool, pc int) (uint64, *Fault) {
	v, f := e.m.mem.Load(addr, pc)
	if f != nil {
		return 0, f
	}
	if e.m.obs != nil {
		e.m.obs.Load(e.t.ID, e.t.Retired, pc, addr, v, atomic)
	}
	return v, nil
}

func (e threadEnv) Store(addr, val uint64, atomic bool, pc int) *Fault {
	if f := e.m.mem.Store(addr, val, pc); f != nil {
		return f
	}
	if e.m.obs != nil {
		e.m.obs.Store(e.t.ID, e.t.Retired, pc, addr, val, atomic)
	}
	return nil
}

func (e threadEnv) Lock(addr uint64, pc int) (bool, *Fault) {
	if addr < isa.NullGuardTop {
		return false, &Fault{Kind: FaultNullAccess, PC: pc, Addr: addr}
	}
	holder, held := e.m.locks[addr]
	if !held {
		e.m.locks[addr] = e.t.ID
		return false, nil
	}
	if holder == e.t.ID {
		// Non-reentrant: self-deadlock. Block forever; the machine
		// reports deadlock if nothing else can run.
		e.t.State = BlockedLock
		e.t.waitAddr = addr
		return true, nil
	}
	e.t.State = BlockedLock
	e.t.waitAddr = addr
	return true, nil
}

func (e threadEnv) Unlock(addr uint64, pc int) *Fault {
	holder, held := e.m.locks[addr]
	if !held || holder != e.t.ID {
		return &Fault{Kind: FaultUnheldUnlock, PC: pc, Addr: addr}
	}
	delete(e.m.locks, addr)
	// Wake every waiter; they re-contend and the scheduler picks the
	// winner, which keeps lock handoff order a pure function of the seed.
	for _, w := range e.m.threads {
		if w.State == BlockedLock && w.waitAddr == addr {
			w.State = Runnable
		}
	}
	return nil
}

func (e threadEnv) Syscall(cpu *Cpu, num int64, pc int) (SysOutcome, *Fault) {
	m, t := e.m, e.t
	// Syscall results replace r1; the recorder logs the injected value so
	// the replayer can reproduce it without re-running the kernel.
	emitRet := func(res uint64) {
		cpu.Regs[1] = res
		if m.obs != nil {
			m.obs.SyscallRet(t.ID, t.Retired, res)
		}
	}
	switch num {
	case isa.SysExit:
		t.ExitCode = cpu.Regs[1]
		return SysExited, nil

	case isa.SysPrint:
		t.Output = append(t.Output, int64(cpu.Regs[1]))
		emitRet(cpu.Regs[1])
		return SysDone, nil

	case isa.SysAlloc:
		base, f := m.mem.Alloc(cpu.Regs[1], pc)
		if f != nil {
			return SysDone, f
		}
		emitRet(base)
		return SysDone, nil

	case isa.SysFree:
		if f := m.mem.Free(cpu.Regs[1], pc); f != nil {
			return SysDone, f
		}
		emitRet(0)
		return SysDone, nil

	case isa.SysSpawn:
		entry := int(int64(cpu.Regs[1]))
		if entry < 0 || entry >= len(m.prog.Code) {
			return SysDone, &Fault{Kind: FaultBadSpawn, PC: pc, Addr: cpu.Regs[1]}
		}
		if len(m.threads) >= m.cfg.MaxThreads {
			return SysDone, &Fault{Kind: FaultBadSpawn, PC: pc}
		}
		child := &Thread{ID: len(m.threads), State: Runnable, StartTS: m.pendTS}
		child.Cpu.PC = entry
		child.Cpu.Regs[1] = cpu.Regs[2]
		child.Cpu.Regs[isa.SP] = isa.StackTop(child.ID)
		m.threads = append(m.threads, child)
		m.liveCnt++
		m.assignPriority(child.ID)
		if m.obs != nil {
			m.obs.ThreadStarted(child, child.StartTS)
		}
		emitRet(uint64(child.ID))
		return SysDone, nil

	case isa.SysJoin:
		target := int(int64(cpu.Regs[1]))
		if target < 0 || target >= len(m.threads) || target == t.ID {
			return SysDone, &Fault{Kind: FaultBadJoin, PC: pc, Addr: cpu.Regs[1]}
		}
		w := m.threads[target]
		if !w.State.Terminated() {
			t.State = BlockedJoin
			t.waitTid = target
			return SysBlocked, nil
		}
		code := w.ExitCode
		if w.State == Faulted {
			code = ^uint64(0)
		}
		emitRet(code)
		return SysDone, nil

	case isa.SysYield:
		t.yield = true
		emitRet(0)
		return SysDone, nil

	case isa.SysGettid:
		emitRet(uint64(t.ID))
		return SysDone, nil

	case isa.SysRand:
		emitRet(m.nextRand())
		return SysDone, nil

	case isa.SysTime:
		emitRet(m.retired)
		return SysDone, nil

	case isa.SysNop:
		emitRet(0)
		return SysDone, nil
	}
	return SysDone, &Fault{Kind: FaultInvalidOp, PC: pc}
}
