package machine

import (
	"sort"

	"repro/internal/isa"
)

const (
	pageShift = 10
	pageWords = 1 << pageShift
	pageMask  = pageWords - 1
)

// Memory is the RVM's word-granular flat address space, backed by pages
// allocated on demand (unmapped words read as zero). It also owns the heap
// bump allocator and the use-after-free poison set: freed blocks are never
// reused, so dangling accesses fault deterministically.
type Memory struct {
	pages    map[uint64]*[pageWords]uint64
	heapNext uint64
	blocks   map[uint64]uint64 // live allocation base -> size in words
	poisoned map[uint64]struct{}
	maxHeap  uint64
}

// NewMemory returns an empty memory whose heap can grow to maxHeapWords
// (0 means a generous default).
func NewMemory(maxHeapWords uint64) *Memory {
	if maxHeapWords == 0 {
		maxHeapWords = 1 << 20
	}
	return &Memory{
		pages:    make(map[uint64]*[pageWords]uint64),
		heapNext: isa.HeapBase,
		blocks:   make(map[uint64]uint64),
		poisoned: make(map[uint64]struct{}),
		maxHeap:  maxHeapWords,
	}
}

// LoadInit copies a program's initialized data segment into memory.
func (m *Memory) LoadInit(data map[uint64]uint64) {
	for addr, v := range data {
		m.write(addr, v)
	}
}

func (m *Memory) page(addr uint64, create bool) *[pageWords]uint64 {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageWords]uint64)
		m.pages[pn] = p
	}
	return p
}

func (m *Memory) read(addr uint64) uint64 {
	if p := m.page(addr, false); p != nil {
		return p[addr&pageMask]
	}
	return 0
}

func (m *Memory) write(addr uint64, v uint64) {
	m.page(addr, true)[addr&pageMask] = v
}

// check validates an address for a data access.
func (m *Memory) check(addr uint64, pc int) *Fault {
	if addr < isa.NullGuardTop {
		return &Fault{Kind: FaultNullAccess, PC: pc, Addr: addr}
	}
	if _, bad := m.poisoned[addr]; bad {
		return &Fault{Kind: FaultUseAfterFree, PC: pc, Addr: addr}
	}
	return nil
}

// Load reads the word at addr, faulting on null-guard or poisoned
// addresses.
func (m *Memory) Load(addr uint64, pc int) (uint64, *Fault) {
	if f := m.check(addr, pc); f != nil {
		return 0, f
	}
	return m.read(addr), nil
}

// Store writes the word at addr with the same checks as Load.
func (m *Memory) Store(addr, v uint64, pc int) *Fault {
	if f := m.check(addr, pc); f != nil {
		return f
	}
	m.write(addr, v)
	return nil
}

// Alloc carves a fresh zeroed block of n words from the heap and returns
// its base address. Blocks are never recycled, so every allocation has a
// unique address for the lifetime of the run.
func (m *Memory) Alloc(n uint64, pc int) (uint64, *Fault) {
	if n == 0 {
		n = 1
	}
	if m.heapNext+n > isa.HeapBase+m.maxHeap {
		return 0, &Fault{Kind: FaultOOM, PC: pc}
	}
	base := m.heapNext
	m.heapNext += n
	m.blocks[base] = n
	for i := uint64(0); i < n; i++ {
		m.write(base+i, 0)
	}
	return base, nil
}

// Free releases the block at base, poisoning every word so later accesses
// fault as use-after-free. Freeing a non-block address (including a second
// free of the same block) faults.
func (m *Memory) Free(base uint64, pc int) *Fault {
	n, ok := m.blocks[base]
	if !ok {
		return &Fault{Kind: FaultBadFree, PC: pc, Addr: base}
	}
	delete(m.blocks, base)
	for i := uint64(0); i < n; i++ {
		m.poisoned[base+i] = struct{}{}
	}
	return nil
}

// BlockSize returns the size of the live block at base, or false.
func (m *Memory) BlockSize(base uint64) (uint64, bool) {
	n, ok := m.blocks[base]
	return n, ok
}

// Blocks returns the live allocation table (base -> size), sorted by base.
// The replayer uses this to seed virtual-processor live-in heap state.
func (m *Memory) Blocks() []Block {
	out := make([]Block, 0, len(m.blocks))
	for base, n := range m.blocks {
		out = append(out, Block{Base: base, Size: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// Poisoned reports whether addr belongs to a freed block.
func (m *Memory) Poisoned(addr uint64) bool {
	_, bad := m.poisoned[addr]
	return bad
}

// Block is one live heap allocation.
type Block struct {
	Base, Size uint64
}

// Peek reads a word without access checks (debugger/analysis use only).
func (m *Memory) Peek(addr uint64) uint64 { return m.read(addr) }

// Poke writes a word without access checks (analysis use only).
func (m *Memory) Poke(addr, v uint64) { m.write(addr, v) }
