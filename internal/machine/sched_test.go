package machine

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

const lockedCounterSrc = `
.entry main
.word mu 0
.word n 0
worker:
  ldi r2, 50
wloop:
  ldi r3, mu
  lock [r3+0]
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  unlock [r3+0]
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  ldi r2, n
  ld r1, [r2+0]
  sys print
  halt
`

const racyFlagSrc = `
.entry main
.word n 0
worker:
  ldi r2, 100
wloop:
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  ldi r2, n
  ld r1, [r2+0]
  sys print
  halt
`

func TestAllPoliciesRunLockedProgramCorrectly(t *testing.T) {
	for _, policy := range []SchedPolicy{PolicyRandom, PolicyRoundRobin, PolicyPCT} {
		for _, seed := range []int64{1, 7} {
			_, res := run(t, lockedCounterSrc, Config{Seed: seed, Policy: policy})
			t0 := res.Threads[0]
			if t0.State != Halted {
				t.Fatalf("%v seed %d: main %v (fault %v)", policy, seed, t0.State, t0.Fault)
			}
			if len(t0.Output) != 1 || t0.Output[0] != 100 {
				t.Errorf("%v seed %d: output = %v, want [100]", policy, seed, t0.Output)
			}
			if res.Deadlocked {
				t.Errorf("%v seed %d: deadlock", policy, seed)
			}
		}
	}
}

func TestPoliciesAreDeterministicPerSeed(t *testing.T) {
	for _, policy := range []SchedPolicy{PolicyRandom, PolicyRoundRobin, PolicyPCT} {
		_, a := run(t, racyFlagSrc, Config{Seed: 3, Policy: policy})
		_, b := run(t, racyFlagSrc, Config{Seed: 3, Policy: policy})
		if a.TotalSteps != b.TotalSteps {
			t.Errorf("%v: steps differ %d vs %d", policy, a.TotalSteps, b.TotalSteps)
		}
		if a.Threads[0].Output[0] != b.Threads[0].Output[0] {
			t.Errorf("%v: outputs differ", policy)
		}
	}
}

func TestRoundRobinIsRegular(t *testing.T) {
	// Round-robin with full quanta loses far fewer updates than random
	// preemption — the counter ends near the maximum.
	_, rr := run(t, racyFlagSrc, Config{Seed: 5, Policy: PolicyRoundRobin, MaxQuantum: 1 << 20})
	if got := rr.Threads[0].Output[0]; got < 150 {
		t.Errorf("round-robin full-quantum lost too many updates: %d", got)
	}
}

func TestPCTDemotionChangesSchedule(t *testing.T) {
	// Different seeds must produce different PCT schedules (priorities and
	// change points differ).
	outputs := map[int64]bool{}
	for seed := int64(1); seed <= 12; seed++ {
		_, res := run(t, racyFlagSrc, Config{Seed: seed, Policy: PolicyPCT, PCTDepth: 4, PCTHorizon: 1000})
		outputs[res.Threads[0].Output[0]] = true
	}
	if len(outputs) < 2 {
		t.Error("PCT schedules identical across seeds")
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []SchedPolicy{PolicyRandom, PolicyRoundRobin, PolicyPCT} {
		if s := p.String(); s == "" || s[0] == 'p' && s[1] == 'o' && s[2] == 'l' && s[3] == 'i' {
			t.Errorf("policy %d unnamed: %q", p, s)
		}
	}
	if SchedPolicy(9).String() != "policy(9)" {
		t.Error("unknown policy should render numerically")
	}
}

func TestPCTRecordingsReplayable(t *testing.T) {
	// PCT interleavings must be recordable/replayable like any other:
	// the replay machinery is schedule-agnostic. (Full determinism checks
	// live in the replay package; here we just confirm recording works.)
	prog := mustProg(t, racyFlagSrc)
	for seed := int64(1); seed <= 4; seed++ {
		m, err := New(prog, Config{Seed: seed, Policy: PolicyPCT})
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		if res.Deadlocked {
			t.Fatalf("seed %d: deadlock under PCT", seed)
		}
	}
}

func mustProg(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble("sched", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestManyThreadsStress(t *testing.T) {
	// 40 workers hammer one locked counter: exercises the scheduler,
	// per-thread stack layout, and lock wake-ups at scale.
	src := `
.entry main
.word mu 0
.word n 0
.space tids 40
worker:
  ldi r2, 20
wloop:
  ldi r3, mu
  lock [r3+0]
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  unlock [r3+0]
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
main:
  ldi r10, tids
  ldi r9, 40
  ldi r11, 0
spawnloop:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  add r12, r10, r11
  st [r12+0], r1
  addi r11, r11, 1
  bne r11, r9, spawnloop
  ldi r11, 0
joinloop:
  add r12, r10, r11
  ld r1, [r12+0]
  sys join
  addi r11, r11, 1
  bne r11, r9, joinloop
  ldi r2, n
  ld r1, [r2+0]
  sys print
  halt
`
	for _, seed := range []int64{1, 9} {
		_, res := run(t, src, Config{Seed: seed, MaxThreads: 64})
		t0 := res.Threads[0]
		if t0.State != Halted {
			t.Fatalf("seed %d: main %v (fault %v)", seed, t0.State, t0.Fault)
		}
		if len(t0.Output) != 1 || t0.Output[0] != 800 {
			t.Errorf("seed %d: output = %v, want [800]", seed, t0.Output)
		}
		if len(res.Threads) != 41 {
			t.Errorf("seed %d: threads = %d, want 41", seed, len(res.Threads))
		}
	}
}
