package machine

import "repro/internal/isa"

// MultiObserver fans the machine's event stream out to several observers
// in registration order. Config.Observer accepts a single consumer; the
// fan-out lets the recorder and an instrumentation observer (or any
// other listener) attach to the same run without interfering — every
// observer sees the identical stream of callbacks.
//
// Construct it with NewMultiObserver, which also preserves the KeyFramer
// and Stopper extensions: the result implements each exactly when at
// least one wrapped observer does, so the machine's construction-time
// interface checks keep working and plain observers still pay nothing
// per retire or per quantum.
type MultiObserver struct {
	obs []Observer
}

// NewMultiObserver combines observers into one. Nil entries are dropped;
// zero observers yield nil (no observation), and a single observer is
// returned unwrapped so the common one-consumer path is unchanged.
func NewMultiObserver(observers ...Observer) Observer {
	list := make([]Observer, 0, len(observers))
	kfs := make([]KeyFramer, 0, len(observers))
	stops := make([]Stopper, 0, len(observers))
	for _, o := range observers {
		if o == nil {
			continue
		}
		list = append(list, o)
		if kf, ok := o.(KeyFramer); ok {
			kfs = append(kfs, kf)
		}
		if st, ok := o.(Stopper); ok {
			stops = append(stops, st)
		}
	}
	switch len(list) {
	case 0:
		return nil
	case 1:
		return list[0]
	}
	m := &MultiObserver{obs: list}
	switch {
	case len(kfs) > 0 && len(stops) > 0:
		return &multiKeyFramerStopper{
			multiKeyFramer: multiKeyFramer{MultiObserver: m, kfs: kfs},
			stops:          stops,
		}
	case len(kfs) > 0:
		return &multiKeyFramer{MultiObserver: m, kfs: kfs}
	case len(stops) > 0:
		return &multiStopper{MultiObserver: m, stops: stops}
	}
	return m
}

// ThreadStarted implements Observer.
func (m *MultiObserver) ThreadStarted(t *Thread, startTS uint64) {
	for _, o := range m.obs {
		o.ThreadStarted(t, startTS)
	}
}

// ThreadEnded implements Observer.
func (m *MultiObserver) ThreadEnded(t *Thread, endTS uint64) {
	for _, o := range m.obs {
		o.ThreadEnded(t, endTS)
	}
}

// Load implements Observer.
func (m *MultiObserver) Load(tid int, idx uint64, pc int, addr, val uint64, atomic bool) {
	for _, o := range m.obs {
		o.Load(tid, idx, pc, addr, val, atomic)
	}
}

// Store implements Observer.
func (m *MultiObserver) Store(tid int, idx uint64, pc int, addr, val uint64, atomic bool) {
	for _, o := range m.obs {
		o.Store(tid, idx, pc, addr, val, atomic)
	}
}

// Sequencer implements Observer.
func (m *MultiObserver) Sequencer(tid int, idx uint64, ts uint64, op isa.Op, sysNum int64) {
	for _, o := range m.obs {
		o.Sequencer(tid, idx, ts, op, sysNum)
	}
}

// SyscallRet implements Observer.
func (m *MultiObserver) SyscallRet(tid int, idx uint64, res uint64) {
	for _, o := range m.obs {
		o.SyscallRet(tid, idx, res)
	}
}

// multiKeyFramer is the fan-out variant returned when some wrapped
// observer implements KeyFramer; AfterRetire forwards only to those.
type multiKeyFramer struct {
	*MultiObserver
	kfs []KeyFramer
}

// AfterRetire implements KeyFramer.
func (m *multiKeyFramer) AfterRetire(t *Thread) {
	for _, kf := range m.kfs {
		kf.AfterRetire(t)
	}
}

// multiStopper is the fan-out variant returned when some wrapped observer
// implements Stopper; the run stops as soon as any of them asks.
type multiStopper struct {
	*MultiObserver
	stops []Stopper
}

// StopRequested implements Stopper.
func (m *multiStopper) StopRequested() bool {
	for _, st := range m.stops {
		if st.StopRequested() {
			return true
		}
	}
	return false
}

// multiKeyFramerStopper combines both extensions when the wrapped set
// contains at least one of each.
type multiKeyFramerStopper struct {
	multiKeyFramer
	stops []Stopper
}

// StopRequested implements Stopper.
func (m *multiKeyFramerStopper) StopRequested() bool {
	for _, st := range m.stops {
		if st.StopRequested() {
			return true
		}
	}
	return false
}
