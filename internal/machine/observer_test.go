package machine

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/obs"
)

// eventTap records every observer callback as a comparable string, so
// two taps attached to the same run can be diffed stream-for-stream.
type eventTap struct {
	events []string
	// retires counts AfterRetire calls when the tap is wrapped as a
	// tapKeyFramer.
	retires int
}

func (e *eventTap) ThreadStarted(t *Thread, startTS uint64) {
	e.events = append(e.events, fmt.Sprintf("start t%d ts%d pc%d", t.ID, startTS, t.Cpu.PC))
}
func (e *eventTap) ThreadEnded(t *Thread, endTS uint64) {
	e.events = append(e.events, fmt.Sprintf("end t%d ts%d state%v", t.ID, endTS, t.State))
}
func (e *eventTap) Load(tid int, idx uint64, pc int, addr, val uint64, atomic bool) {
	e.events = append(e.events, fmt.Sprintf("load t%d i%d pc%d a%x v%d %v", tid, idx, pc, addr, val, atomic))
}
func (e *eventTap) Store(tid int, idx uint64, pc int, addr, val uint64, atomic bool) {
	e.events = append(e.events, fmt.Sprintf("store t%d i%d pc%d a%x v%d %v", tid, idx, pc, addr, val, atomic))
}
func (e *eventTap) Sequencer(tid int, idx uint64, ts uint64, op isa.Op, sysNum int64) {
	e.events = append(e.events, fmt.Sprintf("seq t%d i%d ts%d op%d sys%d", tid, idx, ts, op, sysNum))
}
func (e *eventTap) SyscallRet(tid int, idx uint64, res uint64) {
	e.events = append(e.events, fmt.Sprintf("sysret t%d i%d r%d", tid, idx, res))
}

// tapKeyFramer adds the KeyFramer extension to an eventTap.
type tapKeyFramer struct{ *eventTap }

func (k *tapKeyFramer) AfterRetire(t *Thread) { k.retires++ }

const obsTestSrc = `
.entry main
.word g 0
.word l 0
worker:
  ldi r2, g
  ldi r4, l
  lock [r4+0]
  ld r3, [r2+0]
  addi r3, r3, 1
  st [r2+0], r3
  unlock [r4+0]
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r8, r1
  mov r1, r8
  sys join
  ldi r2, g
  ld r1, [r2+0]
  sys print
  halt
`

func obsTestProg(t *testing.T) *isa.Program {
	t.Helper()
	prog, err := asm.Assemble("obs", obsTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestMultiObserverIdenticalStreams runs the same seeded program once
// with a single observer and once with two observers behind a
// MultiObserver, and demands all three taps saw the very same stream.
func TestMultiObserverIdenticalStreams(t *testing.T) {
	prog := obsTestProg(t)

	solo := &eventTap{}
	m, err := New(prog, Config{Seed: 42, Observer: solo})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()

	a, b := &eventTap{}, &eventTap{}
	m2, err := New(prog, Config{Seed: 42, Observer: NewMultiObserver(a, nil, b)})
	if err != nil {
		t.Fatal(err)
	}
	m2.Run()

	if len(solo.events) == 0 {
		t.Fatal("no events observed")
	}
	if !reflect.DeepEqual(solo.events, a.events) {
		t.Errorf("first fan-out observer diverged from solo run:\nsolo %v\nfan  %v", solo.events, a.events)
	}
	if !reflect.DeepEqual(a.events, b.events) {
		t.Errorf("fan-out observers diverged from each other:\na %v\nb %v", a.events, b.events)
	}
}

// TestMultiObserverKeyFramer proves the KeyFramer extension survives the
// fan-out: AfterRetire fires once per retired instruction for exactly
// the wrapped observers that implement it.
func TestMultiObserverKeyFramer(t *testing.T) {
	prog := obsTestProg(t)
	plain := &eventTap{}
	kf := &tapKeyFramer{&eventTap{}}
	multi := NewMultiObserver(plain, kf)
	if _, ok := multi.(KeyFramer); !ok {
		t.Fatal("fan-out with a KeyFramer member must implement KeyFramer")
	}
	m, err := New(prog, Config{Seed: 7, Observer: multi})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	// AfterRetire fires on StepContinue only (not on halt/exit retires):
	// two sys exit + one halt end threads without an AfterRetire.
	want := int(res.TotalSteps) - len(res.Threads)
	if kf.retires != want {
		t.Errorf("AfterRetire fired %d times, want %d (total steps %d)", kf.retires, want, res.TotalSteps)
	}
	if plain.retires != 0 {
		t.Error("plain observer must not receive AfterRetire")
	}
	if !reflect.DeepEqual(plain.events, kf.events) {
		t.Error("KeyFramer member must still see the full event stream")
	}

	// No KeyFramer member: the fan-out must NOT advertise the interface,
	// so the machine skips the per-retire hook entirely.
	if _, ok := NewMultiObserver(&eventTap{}, &eventTap{}).(KeyFramer); ok {
		t.Error("fan-out without KeyFramer members must not implement KeyFramer")
	}
}

// TestNewMultiObserverCollapses checks the degenerate arities.
func TestNewMultiObserverCollapses(t *testing.T) {
	if NewMultiObserver() != nil {
		t.Error("zero observers must collapse to nil")
	}
	if NewMultiObserver(nil, nil) != nil {
		t.Error("all-nil observers must collapse to nil")
	}
	tap := &eventTap{}
	if got := NewMultiObserver(nil, tap); got != Observer(tap) {
		t.Error("single observer must be returned unwrapped")
	}
}

// TestMetricsObserverCounts runs a program with recorder-free metrics
// observation and checks the counters add up against a reference tap.
func TestMetricsObserverCounts(t *testing.T) {
	prog := obsTestProg(t)
	reg := obs.NewRegistry()
	tap := &eventTap{}
	mo := NewMetricsObserver(reg)
	m, err := New(prog, Config{Seed: 3, Observer: NewMultiObserver(tap, mo)})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()

	count := func(prefix string) uint64 {
		var n uint64
		for _, e := range tap.events {
			if len(e) >= len(prefix) && e[:len(prefix)] == prefix {
				n++
			}
		}
		return n
	}
	snap := reg.Snapshot()
	for counter, prefix := range map[string]string{
		"machine.loads":           "load ",
		"machine.stores":          "store ",
		"machine.sequencers":      "seq ",
		"machine.syscall_returns": "sysret ",
		"machine.threads_started": "start ",
		"machine.threads_ended":   "end ",
	} {
		if got, want := snap.Counters[counter], count(prefix); got != want {
			t.Errorf("%s = %d, want %d", counter, got, want)
		}
	}
	if snap.Counters["machine.loads"] == 0 || snap.Counters["machine.sequencers"] == 0 {
		t.Error("test program should produce loads and sequencers")
	}
}
