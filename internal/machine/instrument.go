package machine

import (
	"repro/internal/isa"
	"repro/internal/obs"
)

// MetricsObserver is an Observer that counts the machine's raw event
// stream into an obs.Registry — the instrumentation consumer the
// MultiObserver fan-out exists for. It attaches next to the recorder
// (record.RunInstrumented) so recording and measurement share one run
// without perturbing each other.
//
// Counter catalog (see docs/OBSERVABILITY.md):
//
//	machine.loads            successful data loads observed
//	machine.stores           successful data stores observed
//	machine.atomic_ops       lock-prefixed accesses among them
//	machine.sequencers       synchronization instructions retired
//	machine.syscall_returns  syscall results produced
//	machine.threads_started  threads that became live
//	machine.threads_ended    threads that terminated
type MetricsObserver struct {
	loads      *obs.Counter
	stores     *obs.Counter
	atomics    *obs.Counter
	seqs       *obs.Counter
	sysrets    *obs.Counter
	started    *obs.Counter
	ended      *obs.Counter
	retireHist *obs.Histogram
}

// NewMetricsObserver builds an observer recording into reg. The counters
// are resolved once here so the per-event path is a single atomic add.
// A nil registry yields a valid observer that counts into the void.
func NewMetricsObserver(reg *obs.Registry) *MetricsObserver {
	return &MetricsObserver{
		loads:      reg.Counter("machine.loads"),
		stores:     reg.Counter("machine.stores"),
		atomics:    reg.Counter("machine.atomic_ops"),
		seqs:       reg.Counter("machine.sequencers"),
		sysrets:    reg.Counter("machine.syscall_returns"),
		started:    reg.Counter("machine.threads_started"),
		ended:      reg.Counter("machine.threads_ended"),
		retireHist: reg.Histogram("machine.instructions_per_thread"),
	}
}

// ThreadStarted implements Observer.
func (m *MetricsObserver) ThreadStarted(t *Thread, startTS uint64) { m.started.Inc() }

// ThreadEnded implements Observer.
func (m *MetricsObserver) ThreadEnded(t *Thread, endTS uint64) {
	m.ended.Inc()
	m.retireHist.Observe(int(t.Retired))
}

// Load implements Observer.
func (m *MetricsObserver) Load(tid int, idx uint64, pc int, addr, val uint64, atomic bool) {
	m.loads.Inc()
	if atomic {
		m.atomics.Inc()
	}
}

// Store implements Observer.
func (m *MetricsObserver) Store(tid int, idx uint64, pc int, addr, val uint64, atomic bool) {
	m.stores.Inc()
	if atomic {
		m.atomics.Inc()
	}
}

// Sequencer implements Observer.
func (m *MetricsObserver) Sequencer(tid int, idx uint64, ts uint64, op isa.Op, sysNum int64) {
	m.seqs.Inc()
}

// SyscallRet implements Observer.
func (m *MetricsObserver) SyscallRet(tid int, idx uint64, res uint64) { m.sysrets.Inc() }
