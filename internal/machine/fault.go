// Package machine implements the RVM: a deterministic multi-threaded
// virtual machine for the isa instruction set.
//
// The machine interleaves threads at instruction granularity under a
// seeded preemptive scheduler, so every run is a deterministic function of
// (program, config). Synchronization instructions and system calls are the
// only sync points — exactly the events the iDNA-style recorder timestamps
// with sequencers.
//
// The instruction interpreter (Step) is shared by three backends: the live
// machine itself, the log-driven replayer, and the classification virtual
// processor. Each supplies its own Env for memory, synchronization, and
// system calls.
package machine

import "fmt"

// FaultKind enumerates the ways an RVM thread can crash.
type FaultKind int

const (
	FaultNone FaultKind = iota
	FaultNullAccess
	FaultUseAfterFree
	FaultBadFree
	FaultDivZero
	FaultBadJump
	FaultInvalidOp
	FaultBadSpawn
	FaultBadJoin
	FaultUnheldUnlock
	FaultOOM
)

var faultNames = map[FaultKind]string{
	FaultNone:         "none",
	FaultNullAccess:   "null-access",
	FaultUseAfterFree: "use-after-free",
	FaultBadFree:      "bad-free",
	FaultDivZero:      "div-by-zero",
	FaultBadJump:      "bad-jump",
	FaultInvalidOp:    "invalid-op",
	FaultBadSpawn:     "bad-spawn",
	FaultBadJoin:      "bad-join",
	FaultUnheldUnlock: "unheld-unlock",
	FaultOOM:          "out-of-memory",
}

func (k FaultKind) String() string {
	if s, ok := faultNames[k]; ok {
		return s
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault describes a crash: what happened, where in the code, and at which
// address if a memory access was involved.
type Fault struct {
	Kind FaultKind
	PC   int
	Addr uint64
}

func (f *Fault) Error() string {
	if f == nil {
		return "<no fault>"
	}
	if f.Addr != 0 {
		return fmt.Sprintf("%v at pc %d, addr 0x%x", f.Kind, f.PC, f.Addr)
	}
	return fmt.Sprintf("%v at pc %d", f.Kind, f.PC)
}
