// Package replay re-executes a recorded program from its trace.Log.
//
// Each thread is replayed purely from its own ThreadLog: the interpreter
// runs the real code, and whenever it reaches an instruction index that
// has a logged load or syscall result, the logged value is injected. A
// thread's replay is therefore exact regardless of what other threads did.
//
// To reconstruct the global picture, replay processes one sequencing
// region at a time, in the order of the regions' starting sequencer
// timestamps — exactly the iDNA replayer's schedule. Along the way it
// rebuilds a global memory image and records, for every region, the
// per-address live-in values, the register state at region entry, and
// every data access. Those are the inputs the happens-before detector and
// the classification virtual processor consume.
package replay

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Access is one data-memory access observed during replay.
type Access struct {
	TID     int
	Idx     uint64 // thread-local instruction index
	PC      int
	Addr    uint64
	Val     uint64 // value loaded or stored
	IsWrite bool
	Atomic  bool // performed by a lock-prefixed instruction
}

// Site returns the stable static identity of the access.
func (a Access) Site(prog *isa.Program) string { return prog.SiteOf(a.PC) }

// Region is one sequencing region: the instructions a thread executed
// between two consecutive sequencers.
type Region struct {
	TID     int
	Ordinal int // region index within its thread
	Global  int // index into Execution.Regions (schedule order)

	StartTS, EndTS   uint64 // sequencer timestamps bounding the region
	StartIdx, EndIdx uint64 // instruction index range [StartIdx, EndIdx)
	StartKind        trace.SeqKind
	EndKind          trace.SeqKind

	StartCpu  machine.Cpu       // architectural state at region entry
	Accesses  []Access          // data accesses, in execution order
	LiveIn    map[uint64]uint64 // pre-region values of addresses the region touches
	HeapEpoch int               // heap events applied before this region ran

	// Annotations for the opening synchronization instruction (the one
	// whose sequencer starts this region), filled in during replay.
	SyncAddr     uint64 // effective address of an opening lock/unlock/atomic
	StartSyscall int64  // opening syscall number, -1 otherwise
	SpawnChild   int    // tid created when the opening syscall is spawn, else -1
	JoinTarget   int    // tid joined when the opening syscall is join, else -1
}

// Overlaps reports whether two regions' timestamp intervals intersect —
// the paper's happens-before test: no sequencer orders the two regions.
func (r *Region) Overlaps(o *Region) bool {
	return r.TID != o.TID && r.StartTS < o.EndTS && o.StartTS < r.EndTS
}

// HeapEventKind tags entries of the global heap event list.
type HeapEventKind uint8

const (
	HeapAlloc HeapEventKind = iota
	HeapFree
)

// HeapEvent is one allocation-lifecycle event, in region-schedule order.
type HeapEvent struct {
	Kind HeapEventKind
	Base uint64
	Size uint64
}

// ThreadReplay is the per-thread outcome of a replay.
type ThreadReplay struct {
	TID       int
	FinalCpu  machine.Cpu
	Output    []int64
	Regions   []*Region
	EndReason trace.EndReason
	ExitCode  uint64
}

// Execution is the fully replayed run.
type Execution struct {
	Log        *trace.Log
	Prog       *isa.Program
	Threads    []*ThreadReplay
	Regions    []*Region // all regions in schedule (start-timestamp) order
	HeapEvents []HeapEvent
	FinalMem   map[uint64]uint64 // reconstructed global memory image
}

// Thread returns the replay of tid, or nil.
func (e *Execution) Thread(tid int) *ThreadReplay {
	for _, t := range e.Threads {
		if t.TID == tid {
			return t
		}
	}
	return nil
}

// PoisonedAt reports whether addr belongs to a freed block as of heap
// epoch (the classifier uses this to reproduce use-after-free faults).
func (e *Execution) PoisonedAt(addr uint64, epoch int) bool {
	poisoned := false
	for i := 0; i < epoch && i < len(e.HeapEvents); i++ {
		ev := e.HeapEvents[i]
		if addr >= ev.Base && addr < ev.Base+ev.Size {
			poisoned = ev.Kind == HeapFree
		}
	}
	return poisoned
}

// BlockAt returns the live allocation covering base exactly as of epoch.
func (e *Execution) BlockAt(base uint64, epoch int) (uint64, bool) {
	size, live := uint64(0), false
	for i := 0; i < epoch && i < len(e.HeapEvents); i++ {
		ev := e.HeapEvents[i]
		if ev.Base == base {
			live = ev.Kind == HeapAlloc
			size = ev.Size
		}
	}
	if !live {
		return 0, false
	}
	return size, true
}

// Options tunes a replay.
type Options struct {
	// SkipAccesses disables access/live-in collection; the replay then
	// only reproduces per-thread state (used by the replay-overhead
	// benchmark, which measures pure re-execution).
	SkipAccesses bool
	// StopAfterRegions, when positive, replays only that many regions of
	// the global schedule and stops. This is the time-travel primitive:
	// replaying successively shorter prefixes steps the whole execution
	// backwards (iDNA's reverse debugging works the same way — replay to
	// an earlier point).
	StopAfterRegions int
	// Metrics, when set, receives the replay stage counters (regions
	// replayed, instructions re-executed, injected loads and syscall
	// results). Nil costs nothing on the hot path.
	Metrics *obs.Registry
}

// Run replays log completely. It fails if the log is internally
// inconsistent (corrupt, truncated, or not produced by the recorder).
func Run(log *trace.Log, opts Options) (*Execution, error) {
	sess, err := NewSession(log, opts)
	if err != nil {
		return nil, err
	}
	limit := len(sess.exec.Regions)
	if opts.StopAfterRegions > 0 && opts.StopAfterRegions < limit {
		limit = opts.StopAfterRegions
	}
	for sess.Pos() < limit {
		if err := sess.StepRegion(); err != nil {
			return nil, err
		}
	}
	return sess.Finish()
}

// Session is a resumable replay: regions are processed one at a time, and
// the whole replay state can be snapshotted and restored — the analogue
// of iDNA's key frames, and what gives the time-travel debugger O(gap)
// seeks instead of O(prefix) replays.
type Session struct {
	log       *trace.Log
	opts      Options
	exec      *Execution
	replayers map[int]*threadReplayer
	pos       int          // regions processed so far
	cRegions  *obs.Counter // replay.regions (nil when uninstrumented)

	accScratch []Access // reusable access collection buffer (see StepRegion)
}

// NewSession validates the log, builds the per-thread replayers, and
// carves the region schedule without executing anything.
func NewSession(log *trace.Log, opts Options) (*Session, error) {
	if err := log.Validate(); err != nil {
		return nil, err
	}
	exec := &Execution{
		Log:      log,
		Prog:     log.Prog,
		FinalMem: make(map[uint64]uint64),
	}

	// Build per-thread replayers and carve their region lists.
	replayers := make(map[int]*threadReplayer, len(log.Threads))
	for _, tl := range log.Threads {
		tr := newThreadReplayer(log.Prog, tl, exec, opts)
		replayers[tl.TID] = tr
		exec.Threads = append(exec.Threads, tr.result)
		exec.Regions = append(exec.Regions, tr.result.Regions...)
	}

	// Schedule: regions ordered by starting sequencer timestamp. The only
	// possible tie is between a parent's post-spawn region and the child's
	// first region (both anchored at the spawn sequencer); the child goes
	// first, since conceptually it exists from the instant of the spawn.
	// The Ordinal tie-break makes the order total (same-thread regions are
	// already in Ordinal order), so an unstable sort gives the same result
	// as a stable one without the stable sort's merge passes.
	sort.Slice(exec.Regions, func(i, j int) bool {
		a, b := exec.Regions[i], exec.Regions[j]
		if a.StartTS != b.StartTS {
			return a.StartTS < b.StartTS
		}
		if a.StartKind != b.StartKind {
			return a.StartKind == trace.SeqStart
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Ordinal < b.Ordinal
	})
	for i, r := range exec.Regions {
		r.Global = i
	}
	s := &Session{log: log, opts: opts, exec: exec, replayers: replayers}
	if opts.Metrics != nil {
		s.cRegions = opts.Metrics.Counter("replay.regions")
		opts.Metrics.Counter("replay.executions").Inc()
		opts.Metrics.Counter("replay.threads").Add(uint64(len(log.Threads)))
		opts.Metrics.Emit("replay.regions", uint64(len(exec.Regions)))
	}
	return s, nil
}

// Exec exposes the (partially processed) execution.
func (s *Session) Exec() *Execution { return s.exec }

// Pos returns how many regions of the schedule have been processed.
func (s *Session) Pos() int { return s.pos }

// Done reports whether the whole schedule has been processed.
func (s *Session) Done() bool { return s.pos >= len(s.exec.Regions) }

// ThreadCpu returns the architectural state of tid as of the current
// position.
func (s *Session) ThreadCpu(tid int) (machine.Cpu, bool) {
	tr, ok := s.replayers[tid]
	if !ok {
		return machine.Cpu{}, false
	}
	return tr.cpu, true
}

// StepRegion processes the next region of the schedule.
func (s *Session) StepRegion() error {
	if s.Done() {
		return fmt.Errorf("replay: session already at the end")
	}
	region := s.exec.Regions[s.pos]
	tr := s.replayers[region.TID]
	s.cRegions.Add(1)
	region.HeapEpoch = len(s.exec.HeapEvents)
	scratchBacked := false
	if region.Accesses == nil && !s.opts.SkipAccesses {
		// First processing: collect accesses into the session's reusable
		// buffer, then shrink-copy below. Most instructions of a region are
		// not data accesses, so sizing an allocation by region length would
		// waste most of it, and the exact count is only known afterwards.
		region.Accesses = s.accScratch[:0]
		scratchBacked = true
	}
	region.Accesses = region.Accesses[:0] // reprocessing after Restore starts clean
	if err := tr.runRegion(region); err != nil {
		return err
	}
	if scratchBacked {
		s.accScratch = region.Accesses[:0] // keep the grown buffer for the next region
		exact := make([]Access, len(region.Accesses))
		copy(exact, region.Accesses)
		region.Accesses = exact
	}
	if !s.opts.SkipAccesses {
		// Live-in: the pre-region global image restricted to the region's
		// footprint, completed by the region's own first loads for
		// addresses the image has not seen yet.
		region.LiveIn = make(map[uint64]uint64, len(region.Accesses)/4+1)
		for _, a := range region.Accesses {
			if _, seen := region.LiveIn[a.Addr]; seen {
				continue
			}
			if v, ok := s.exec.FinalMem[a.Addr]; ok {
				region.LiveIn[a.Addr] = v
			} else if !a.IsWrite {
				region.LiveIn[a.Addr] = a.Val
			}
			// First access is a write and the image has no value:
			// genuinely unknown; leave absent.
		}
		for _, a := range region.Accesses {
			s.exec.FinalMem[a.Addr] = a.Val
		}
	}
	s.pos++
	return nil
}

// Finish runs the end-of-replay consistency checks and returns the
// execution. For complete sessions every thread must have consumed its
// whole log; partial sessions (time travel) skip that check and trim the
// region list to what ran.
func (s *Session) Finish() (*Execution, error) {
	complete := s.Done() && s.opts.StopAfterRegions == 0
	for _, tl := range s.log.Threads {
		tr := s.replayers[tl.TID]
		if complete && tr.idx != tl.Retired {
			return nil, fmt.Errorf("replay: thread %d stopped at %d of %d instructions",
				tl.TID, tr.idx, tl.Retired)
		}
		tr.result.FinalCpu = tr.cpu
	}
	if !complete && s.pos < len(s.exec.Regions) {
		s.exec.Regions = s.exec.Regions[:s.pos]
	}
	return s.exec, nil
}

// Snapshot captures the complete replay state at the current position.
type Snapshot struct {
	pos        int
	heapEvents int
	finalMem   map[uint64]uint64
	threads    map[int]threadSnap
}

// Pos returns the schedule position the snapshot was taken at.
func (sn *Snapshot) Pos() int { return sn.pos }

type threadSnap struct {
	cpu       machine.Cpu
	idx       uint64
	loadPtr   int
	sysPtr    int
	mem       map[uint64]uint64
	outputLen int
}

// Snapshot captures the session state (a key frame).
func (s *Session) Snapshot() *Snapshot {
	sn := &Snapshot{
		pos:        s.pos,
		heapEvents: len(s.exec.HeapEvents),
		finalMem:   copyMap(s.exec.FinalMem),
		threads:    make(map[int]threadSnap, len(s.replayers)),
	}
	for tid, tr := range s.replayers {
		sn.threads[tid] = threadSnap{
			cpu:       tr.cpu,
			idx:       tr.idx,
			loadPtr:   tr.loadPtr,
			sysPtr:    tr.sysPtr,
			mem:       copyMap(tr.mem),
			outputLen: len(tr.result.Output),
		}
	}
	return sn
}

// Restore rewinds (or fast-forwards) the session to a snapshot.
func (s *Session) Restore(sn *Snapshot) {
	s.pos = sn.pos
	s.exec.HeapEvents = s.exec.HeapEvents[:sn.heapEvents]
	s.exec.FinalMem = copyMap(sn.finalMem)
	for tid, ts := range sn.threads {
		tr := s.replayers[tid]
		tr.cpu = ts.cpu
		tr.idx = ts.idx
		tr.loadPtr = ts.loadPtr
		tr.sysPtr = ts.sysPtr
		tr.mem = copyMap(ts.mem)
		tr.result.Output = tr.result.Output[:ts.outputLen]
		tr.err = nil
		tr.cur = nil
	}
}

func copyMap(m map[uint64]uint64) map[uint64]uint64 {
	c := make(map[uint64]uint64, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// StateAt replays the first n regions of the schedule and returns the
// partial execution: thread states and the reconstructed memory image as
// of that point. Calling it with decreasing n is reverse execution.
func StateAt(log *trace.Log, n int) (*Execution, error) {
	if n <= 0 {
		n = 1
	}
	return Run(log, Options{StopAfterRegions: n})
}

// threadReplayer replays one thread from its log.
type threadReplayer struct {
	prog *isa.Program
	log  *trace.ThreadLog
	exec *Execution
	opts Options

	cpu machine.Cpu
	mem map[uint64]uint64 // the thread's replayed memory view
	idx uint64            // next instruction index to execute

	loadPtr int
	sysPtr  int

	cur    *Region // region currently being replayed
	result *ThreadReplay
	err    error

	// Stage counters, nil when the replay is uninstrumented.
	cInstr   *obs.Counter // replay.instructions
	cLoadInj *obs.Counter // replay.loads_injected
	cSysInj  *obs.Counter // replay.sysrets_injected
}

func newThreadReplayer(prog *isa.Program, tl *trace.ThreadLog, exec *Execution, opts Options) *threadReplayer {
	tr := &threadReplayer{
		prog: prog,
		log:  tl,
		exec: exec,
		opts: opts,
		mem:  make(map[uint64]uint64),
		result: &ThreadReplay{
			TID:       tl.TID,
			EndReason: tl.EndReason,
			ExitCode:  tl.ExitCode,
		},
	}
	tr.cpu.PC = tl.InitPC
	tr.cpu.Regs = tl.InitRegs
	if opts.Metrics != nil {
		tr.cInstr = opts.Metrics.Counter("replay.instructions")
		tr.cLoadInj = opts.Metrics.Counter("replay.loads_injected")
		tr.cSysInj = opts.Metrics.Counter("replay.sysrets_injected")
	}

	// Carve regions from the sequencer list: region k spans
	// [seq[k].Idx, seq[k+1].Idx) and [seq[k].TS, seq[k+1].TS).
	// The Region structs are carved from one block allocation; the block
	// is never resized, so the pointers into it stay valid for the life
	// of the execution.
	seqs := tl.Seqs
	if n := len(seqs) - 1; n > 0 {
		block := make([]Region, n)
		tr.result.Regions = make([]*Region, n)
		for k := 0; k < n; k++ {
			block[k] = Region{
				TID:          tl.TID,
				Ordinal:      k,
				StartTS:      seqs[k].TS,
				EndTS:        seqs[k+1].TS,
				StartIdx:     seqs[k].Idx,
				EndIdx:       seqs[k+1].Idx,
				StartKind:    seqs[k].Kind,
				EndKind:      seqs[k+1].Kind,
				StartSyscall: -1,
				SpawnChild:   -1,
				JoinTarget:   -1,
			}
			tr.result.Regions[k] = &block[k]
		}
	}
	return tr
}

// runRegion replays region's instruction range on this thread.
func (tr *threadReplayer) runRegion(region *Region) error {
	if region.StartIdx != tr.idx {
		return fmt.Errorf("replay: thread %d region %d starts at %d, replay is at %d",
			tr.log.TID, region.Ordinal, region.StartIdx, tr.idx)
	}
	region.StartCpu = tr.cpu
	tr.cur = region
	for tr.idx < region.EndIdx {
		out, f := machine.Step(&tr.cpu, tr.prog.Code, tr)
		if tr.err != nil {
			return tr.err
		}
		if f != nil {
			return fmt.Errorf("replay: thread %d faulted at idx %d during replay (%v); log inconsistent",
				tr.log.TID, tr.idx, f)
		}
		switch out {
		case machine.StepBlocked:
			return fmt.Errorf("replay: thread %d blocked at idx %d; replay must never block", tr.log.TID, tr.idx)
		case machine.StepHalt, machine.StepExited, machine.StepContinue:
			tr.idx++
		}
	}
	tr.cInstr.Add(region.EndIdx - region.StartIdx)
	tr.cur = nil
	return nil
}

// record appends an access to the current region.
func (tr *threadReplayer) record(a Access) {
	if tr.opts.SkipAccesses || tr.cur == nil {
		return
	}
	tr.cur.Accesses = append(tr.cur.Accesses, a)
}

// Load implements machine.Env with logged-value injection.
func (tr *threadReplayer) Load(addr uint64, atomic bool, pc int) (uint64, *machine.Fault) {
	var val uint64
	if atomic {
		tr.annotateOpening(addr)
	}
	if tr.loadPtr < len(tr.log.Loads) {
		rec := tr.log.Loads[tr.loadPtr]
		if rec.Idx == tr.idx && rec.Addr == addr {
			tr.loadPtr++
			tr.cLoadInj.Add(1)
			tr.mem[addr] = rec.Val
			val = rec.Val
			tr.record(Access{TID: tr.log.TID, Idx: tr.idx, PC: pc, Addr: addr, Val: val, Atomic: atomic})
			return val, nil
		}
	}
	v, ok := tr.mem[addr]
	if !ok {
		tr.err = fmt.Errorf("replay: thread %d idx %d loads unlogged address 0x%x",
			tr.log.TID, tr.idx, addr)
		return 0, &machine.Fault{Kind: machine.FaultInvalidOp, PC: pc, Addr: addr}
	}
	tr.record(Access{TID: tr.log.TID, Idx: tr.idx, PC: pc, Addr: addr, Val: v, Atomic: atomic})
	return v, nil
}

// Store implements machine.Env.
func (tr *threadReplayer) Store(addr, val uint64, atomic bool, pc int) *machine.Fault {
	tr.mem[addr] = val
	tr.record(Access{TID: tr.log.TID, Idx: tr.idx, PC: pc, Addr: addr, Val: val, IsWrite: true, Atomic: atomic})
	return nil
}

// annotateOpening records the opening sync instruction's effective
// address when the current instruction is the one that starts the region.
func (tr *threadReplayer) annotateOpening(addr uint64) {
	if tr.cur != nil && tr.idx == tr.cur.StartIdx {
		tr.cur.SyncAddr = addr
	}
}

// Lock implements machine.Env; replay never blocks because the region
// schedule already encodes the original acquisition order.
func (tr *threadReplayer) Lock(addr uint64, pc int) (bool, *machine.Fault) {
	tr.annotateOpening(addr)
	return false, nil
}

// Unlock implements machine.Env.
func (tr *threadReplayer) Unlock(addr uint64, pc int) *machine.Fault {
	tr.annotateOpening(addr)
	return nil
}

// Syscall implements machine.Env by injecting the recorded result instead
// of consulting a kernel.
func (tr *threadReplayer) Syscall(cpu *machine.Cpu, num int64, pc int) (machine.SysOutcome, *machine.Fault) {
	if tr.cur != nil && tr.idx == tr.cur.StartIdx {
		tr.cur.StartSyscall = num
	}
	switch num {
	case isa.SysExit:
		return machine.SysExited, nil
	case isa.SysPrint:
		tr.result.Output = append(tr.result.Output, int64(cpu.Regs[1]))
	}
	// All non-exit syscalls logged a result; inject it.
	if tr.sysPtr >= len(tr.log.SysRets) || tr.log.SysRets[tr.sysPtr].Idx != tr.idx {
		tr.err = fmt.Errorf("replay: thread %d idx %d missing syscall result for %s",
			tr.log.TID, tr.idx, isa.SyscallName(num))
		return machine.SysDone, &machine.Fault{Kind: machine.FaultInvalidOp, PC: pc}
	}
	rec := tr.log.SysRets[tr.sysPtr]
	tr.sysPtr++
	tr.cSysInj.Add(1)

	// Mirror heap effects into the global event list (schedule order) and
	// finish the opening-syscall annotations that need the result.
	switch num {
	case isa.SysAlloc:
		tr.exec.HeapEvents = append(tr.exec.HeapEvents, HeapEvent{Kind: HeapAlloc, Base: rec.Res, Size: max(cpu.Regs[1], 1)})
	case isa.SysFree:
		base := cpu.Regs[1]
		if size, ok := tr.exec.BlockAt(base, len(tr.exec.HeapEvents)); ok {
			tr.exec.HeapEvents = append(tr.exec.HeapEvents, HeapEvent{Kind: HeapFree, Base: base, Size: size})
		}
	case isa.SysSpawn:
		if tr.cur != nil && tr.idx == tr.cur.StartIdx {
			tr.cur.SpawnChild = int(int64(rec.Res))
		}
	case isa.SysJoin:
		if tr.cur != nil && tr.idx == tr.cur.StartIdx {
			tr.cur.JoinTarget = int(int64(cpu.Regs[1]))
		}
	}
	cpu.Regs[1] = rec.Res
	return machine.SysDone, nil
}
