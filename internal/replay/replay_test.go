package replay_test

import (
	"fmt"
	"repro/internal/replay"
	"testing"

	"repro/internal/asm"
	"repro/internal/machine"
	"repro/internal/record"
	"repro/internal/trace"
)

// recordSrc assembles src, records one run, and returns the log plus the
// live machine result for comparison.
func recordSrc(t *testing.T, src string, cfg machine.Config) (*trace.Log, *machine.Result) {
	t.Helper()
	prog, err := asm.Assemble("rp", src)
	if err != nil {
		t.Fatal(err)
	}
	log, res, err := record.Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return log, res
}

// assertReplayMatches replays log and checks per-thread output and final
// register state against the original machine run.
func assertReplayMatches(t *testing.T, log *trace.Log, res *machine.Result) *replay.Execution {
	t.Helper()
	exec, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range res.Threads {
		rt := exec.Thread(mt.ID)
		if rt == nil {
			t.Fatalf("thread %d missing from replay", mt.ID)
		}
		if len(rt.Output) != len(mt.Output) {
			t.Fatalf("thread %d output length: replay %v vs live %v", mt.ID, rt.Output, mt.Output)
		}
		for i := range mt.Output {
			if rt.Output[i] != mt.Output[i] {
				t.Fatalf("thread %d output[%d]: replay %d vs live %d", mt.ID, i, rt.Output[i], mt.Output[i])
			}
		}
		if rt.FinalCpu.Regs != mt.Cpu.Regs {
			t.Fatalf("thread %d final registers differ:\nreplay %v\nlive   %v", mt.ID, rt.FinalCpu.Regs, mt.Cpu.Regs)
		}
	}
	return exec
}

const racyCounterSrc = `
.entry main
.word n 0
worker:
  ldi r2, 40
wloop:
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  ldi r2, n
  ld r1, [r2+0]
  sys print
  halt
`

func TestReplayReproducesSingleThread(t *testing.T) {
	src := `
.word g 3
main:
  ldi r1, 100
  ldi r2, g
loop:
  ld r3, [r2+0]
  add r3, r3, r1
  st [r2+0], r3
  addi r1, r1, -1
  bne r1, r0, loop
  ld r1, [r2+0]
  sys print
  halt
`
	log, res := recordSrc(t, src, machine.Config{Seed: 1})
	assertReplayMatches(t, log, res)
}

func TestReplayReproducesRacyMultithread(t *testing.T) {
	// The central determinism property: even for an unsynchronized racy
	// program, replay must reproduce exactly what the recorded run did —
	// for every scheduler seed.
	for seed := int64(1); seed <= 25; seed++ {
		log, res := recordSrc(t, racyCounterSrc, machine.Config{Seed: seed})
		assertReplayMatches(t, log, res)
	}
}

func TestReplayAfterSerializationRoundTrip(t *testing.T) {
	log, res := recordSrc(t, racyCounterSrc, machine.Config{Seed: 17})
	log2, err := trace.Unmarshal(trace.Marshal(log))
	if err != nil {
		t.Fatal(err)
	}
	assertReplayMatches(t, log2, res)
}

func TestReplayReproducesSyscallResults(t *testing.T) {
	src := `
main:
  sys rand
  sys print
  sys rand
  sys print
  sys time
  sys print
  halt
`
	log, res := recordSrc(t, src, machine.Config{Seed: 9})
	assertReplayMatches(t, log, res)
}

func TestReplayLocksAndAtomics(t *testing.T) {
	src := `
.entry main
.word mu 0
.word n 0
worker:
  ldi r2, 30
wloop:
  ldi r3, mu
  lock [r3+0]
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  unlock [r3+0]
  ldi r6, 1
  xadd r7, [r4+1], r6
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  ldi r2, n
  ld r1, [r2+0]
  sys print
  ld r1, [r2+1]
  sys print
  halt
`
	for _, seed := range []int64{2, 8, 21} {
		log, res := recordSrc(t, src, machine.Config{Seed: seed})
		exec := assertReplayMatches(t, log, res)
		if out := exec.Thread(0).Output; len(out) != 2 || out[0] != 60 || out[1] != 60 {
			t.Errorf("seed %d: output = %v, want [60 60]", seed, out)
		}
	}
}

func TestRegionsPartitionThreads(t *testing.T) {
	log, _ := recordSrc(t, racyCounterSrc, machine.Config{Seed: 4})
	exec, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range exec.Threads {
		tl := log.Thread(th.TID)
		var covered uint64
		for i, r := range th.Regions {
			if r.StartIdx != covered {
				t.Fatalf("thread %d region %d not contiguous: starts %d, want %d", th.TID, i, r.StartIdx, covered)
			}
			if r.EndIdx < r.StartIdx {
				t.Fatalf("thread %d region %d inverted", th.TID, i)
			}
			if r.EndTS <= r.StartTS {
				t.Fatalf("thread %d region %d has empty TS interval", th.TID, i)
			}
			covered = r.EndIdx
		}
		if covered != tl.Retired {
			t.Fatalf("thread %d regions cover %d of %d instructions", th.TID, covered, tl.Retired)
		}
	}
	// Schedule order is by StartTS.
	for i := 1; i < len(exec.Regions); i++ {
		if exec.Regions[i].StartTS < exec.Regions[i-1].StartTS {
			t.Fatal("regions not in schedule order")
		}
		if exec.Regions[i].Global != i {
			t.Fatal("Global index not assigned in schedule order")
		}
	}
}

func TestRegionOverlap(t *testing.T) {
	a := &replay.Region{TID: 0, StartTS: 1, EndTS: 5}
	b := &replay.Region{TID: 1, StartTS: 4, EndTS: 9}
	c := &replay.Region{TID: 1, StartTS: 5, EndTS: 9}
	d := &replay.Region{TID: 0, StartTS: 4, EndTS: 9}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("intersecting intervals should overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("touching intervals are ordered by the shared sequencer")
	}
	if a.Overlaps(d) {
		t.Error("same-thread regions never overlap")
	}
}

func TestAccessesRecordedWithValues(t *testing.T) {
	src := `
.word g 5
main:
  ldi r2, g
  ld r3, [r2+0]
  addi r3, r3, 1
  st [r2+0], r3
  halt
`
	log, _ := recordSrc(t, src, machine.Config{Seed: 1})
	exec, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []replay.Access
	for _, r := range exec.Regions {
		got = append(got, r.Accesses...)
	}
	if len(got) != 2 {
		t.Fatalf("accesses = %d, want 2 (%v)", len(got), got)
	}
	ldAcc, stAcc := got[0], got[1]
	if ldAcc.IsWrite || ldAcc.Val != 5 {
		t.Errorf("load access = %+v, want read of 5", ldAcc)
	}
	if !stAcc.IsWrite || stAcc.Val != 6 {
		t.Errorf("store access = %+v, want write of 6", stAcc)
	}
}

func TestLiveInReconstruction(t *testing.T) {
	src := `
.word g 5
main:
  ldi r2, g
  ld r3, [r2+0]
  fence
  addi r3, r3, 2
  st [r2+0], r3
  fence
  ld r4, [r2+0]
  halt
`
	log, _ := recordSrc(t, src, machine.Config{Seed: 1})
	exec, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Find g's address.
	var gAddr uint64
	for a, v := range log.Prog.Data {
		if v == 5 {
			gAddr = a
		}
	}
	t0 := exec.Thread(0)
	if len(t0.Regions) != 3 {
		t.Fatalf("regions = %d, want 3", len(t0.Regions))
	}
	if v, ok := t0.Regions[0].LiveIn[gAddr]; !ok || v != 5 {
		t.Errorf("region 0 live-in[g] = %d,%v, want 5", v, ok)
	}
	if v, ok := t0.Regions[1].LiveIn[gAddr]; !ok || v != 5 {
		t.Errorf("region 1 live-in[g] = %d,%v, want 5", v, ok)
	}
	if v, ok := t0.Regions[2].LiveIn[gAddr]; !ok || v != 7 {
		t.Errorf("region 2 live-in[g] = %d,%v, want 7", v, ok)
	}
	if exec.FinalMem[gAddr] != 7 {
		t.Errorf("final image[g] = %d, want 7", exec.FinalMem[gAddr])
	}
}

func TestHeapEventsAndPoisonTracking(t *testing.T) {
	src := `
main:
  ldi r1, 4
  sys alloc
  mov r4, r1
  ldi r2, 9
  st [r4+0], r2
  fence
  mov r1, r4
  sys free
  fence
  halt
`
	log, _ := recordSrc(t, src, machine.Config{Seed: 1})
	exec, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.HeapEvents) != 2 {
		t.Fatalf("heap events = %d, want 2", len(exec.HeapEvents))
	}
	base := exec.HeapEvents[0].Base
	if exec.HeapEvents[0].Kind != replay.HeapAlloc || exec.HeapEvents[1].Kind != replay.HeapFree {
		t.Fatal("heap event kinds wrong")
	}
	if exec.PoisonedAt(base, 1) {
		t.Error("block should be live after alloc")
	}
	if !exec.PoisonedAt(base, 2) {
		t.Error("block should be poisoned after free")
	}
	if !exec.PoisonedAt(base+3, 2) {
		t.Error("whole block should be poisoned")
	}
	if _, ok := exec.BlockAt(base, 1); !ok {
		t.Error("BlockAt should see the live block")
	}
	if _, ok := exec.BlockAt(base, 2); ok {
		t.Error("BlockAt should not see the freed block")
	}
}

func TestReplayReproducesFaultedThreadPrefix(t *testing.T) {
	// A thread that faults is replayed up to (not including) the faulting
	// instruction; its end reason comes from the log.
	src := `
main:
  ldi r1, 7
  sys print
  ld r2, [r0+0]   ; null access: faults
  halt
`
	log, _ := recordSrc(t, src, machine.Config{Seed: 1})
	exec, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t0 := exec.Thread(0)
	if t0.EndReason != trace.EndFaulted {
		t.Errorf("end reason = %v, want faulted", t0.EndReason)
	}
	if len(t0.Output) != 1 || t0.Output[0] != 7 {
		t.Errorf("output = %v, want [7]", t0.Output)
	}
}

func TestReplayDetectsCorruptLog(t *testing.T) {
	log, _ := recordSrc(t, racyCounterSrc, machine.Config{Seed: 6})

	// Drop a load record: some load becomes uninjectable and the replay
	// must fail loudly rather than silently diverge.
	victim := log.Thread(1)
	if len(victim.Loads) == 0 {
		t.Fatal("expected logged loads")
	}
	corrupted := *victim
	corrupted.Loads = corrupted.Loads[:0]
	mut := &trace.Log{
		Prog:       log.Prog,
		Seed:       log.Seed,
		FinalClock: log.FinalClock,
		TotalSteps: log.TotalSteps,
	}
	for _, tl := range log.Threads {
		if tl.TID == 1 {
			mut.Threads = append(mut.Threads, &corrupted)
		} else {
			mut.Threads = append(mut.Threads, tl)
		}
	}
	if _, err := replay.Run(mut, replay.Options{}); err == nil {
		t.Error("replay of corrupt log should fail")
	}
}

func TestSkipAccessesStillReproduces(t *testing.T) {
	log, res := recordSrc(t, racyCounterSrc, machine.Config{Seed: 13})
	exec, err := replay.Run(log, replay.Options{SkipAccesses: true})
	if err != nil {
		t.Fatal(err)
	}
	if exec.Thread(0).Output[0] != res.Threads[0].Output[0] {
		t.Error("SkipAccesses changed replayed output")
	}
	for _, r := range exec.Regions {
		if len(r.Accesses) != 0 || r.LiveIn != nil {
			t.Fatal("SkipAccesses should not collect accesses")
		}
	}
}

// TestReplayDeterminismProperty drives many random programs through the
// record→replay pipeline: for every (program shape, seed) the replayed
// final state must equal the live state. This is the repo's central
// property test — if it holds, per-thread logs are genuinely
// self-contained.
func TestReplayDeterminismProperty(t *testing.T) {
	shapes := []struct {
		name string
		gen  func(workers, iters int) string
	}{
		{"racy", func(workers, iters int) string {
			return genWorkers(workers, iters, `
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
`)
		}},
		{"locked", func(workers, iters int) string {
			return genWorkers(workers, iters, `
  ldi r3, mu
  lock [r3+0]
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  unlock [r3+0]
`)
		}},
		{"atomic", func(workers, iters int) string {
			return genWorkers(workers, iters, `
  ldi r4, n
  ldi r6, 1
  xadd r5, [r4+0], r6
`)
		}},
		{"mixed", func(workers, iters int) string {
			return genWorkers(workers, iters, `
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  sys rand
  andi r5, r1, 7
  st [r4+1], r5
  sys yield
`)
		}},
	}
	for _, shape := range shapes {
		for workers := 1; workers <= 3; workers++ {
			for seed := int64(1); seed <= 5; seed++ {
				src := shape.gen(workers, 15)
				log, res := recordSrc(t, src, machine.Config{Seed: seed})
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("%s workers=%d seed=%d: panic %v", shape.name, workers, seed, r)
						}
					}()
					assertReplayMatches(t, log, res)
				}()
			}
		}
	}
}

// genWorkers builds a program with n workers each running `body` iters
// times, joined by main.
func genWorkers(n, iters int, body string) string {
	src := `
.entry main
.word mu 0
.word n 0
worker:
  ldi r2, ` + fmt.Sprint(iters) + `
wloop:` + body + `
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
main:
`
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("  ldi r1, worker\n  ldi r2, %d\n  sys spawn\n  mov r%d, r1\n", i, 6+i)
	}
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("  mov r1, r%d\n  sys join\n", 6+i)
	}
	src += "  ldi r2, n\n  ld r1, [r2+0]\n  sys print\n  halt\n"
	return src
}

func TestTimeTravelPrefixes(t *testing.T) {
	log, _ := recordSrc(t, racyCounterSrc, machine.Config{Seed: 9})
	full, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := len(full.Regions)
	if total < 3 {
		t.Skip("too few regions")
	}
	// Replaying prefix n must process exactly n regions, and the memory
	// image must evolve monotonically toward the full image.
	prev := -1
	for _, n := range []int{1, total / 2, total} {
		exec, err := replay.StateAt(log, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(exec.Regions) != n {
			t.Fatalf("prefix %d processed %d regions", n, len(exec.Regions))
		}
		if len(exec.FinalMem) < prev {
			t.Error("memory image shrank going forward in time")
		}
		prev = len(exec.FinalMem)
	}
	// The full prefix equals the plain replay.
	last, err := replay.StateAt(log, total)
	if err != nil {
		t.Fatal(err)
	}
	for addr, v := range full.FinalMem {
		if last.FinalMem[addr] != v {
			t.Fatalf("memory image differs at 0x%x", addr)
		}
	}
}

func TestStateAtClampsToOne(t *testing.T) {
	log, _ := recordSrc(t, racyCounterSrc, machine.Config{Seed: 2})
	exec, err := replay.StateAt(log, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Regions) != 1 {
		t.Errorf("regions = %d, want 1", len(exec.Regions))
	}
}

func TestReplayReproducesPCTAndRoundRobinSchedules(t *testing.T) {
	// Replay determinism is schedule-agnostic: logs recorded under any
	// scheduler policy replay exactly.
	for _, policy := range []machine.SchedPolicy{machine.PolicyRoundRobin, machine.PolicyPCT} {
		for seed := int64(1); seed <= 6; seed++ {
			log, res := recordSrc(t, racyCounterSrc, machine.Config{Seed: seed, Policy: policy})
			assertReplayMatches(t, log, res)
		}
	}
}
