package replay_test

import (
	"repro/internal/replay"
	"testing"

	"repro/internal/asm"
	"repro/internal/machine"
	"repro/internal/record"
	"repro/internal/trace"
)

func TestThreadStateAtMatchesFullReplay(t *testing.T) {
	prog, err := asm.Assemble("rp", racyCounterSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Record twice: with and without key frames. Both logs must answer
	// state queries identically.
	plain, _, err := record.Run(prog, machine.Config{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	framed, _, err := record.RunWithKeyFrames(prog, machine.Config{Seed: 21}, 16)
	if err != nil {
		t.Fatal(err)
	}
	framedHasFrames := false
	for _, tl := range framed.Threads {
		if len(tl.KeyFrames) > 0 {
			framedHasFrames = true
		}
	}
	if !framedHasFrames {
		t.Fatal("key-frame recording produced no frames")
	}

	for _, tl := range plain.Threads {
		for _, idx := range []uint64{0, tl.Retired / 3, tl.Retired / 2, tl.Retired} {
			a, err := replay.ThreadStateAt(plain, tl.TID, idx)
			if err != nil {
				t.Fatalf("plain tid %d idx %d: %v", tl.TID, idx, err)
			}
			b, err := replay.ThreadStateAt(framed, tl.TID, idx)
			if err != nil {
				t.Fatalf("framed tid %d idx %d: %v", tl.TID, idx, err)
			}
			if a.Cpu.Regs != b.Cpu.Regs || a.Cpu.PC != b.Cpu.PC {
				t.Fatalf("tid %d idx %d: keyframe resume diverged from scratch replay", tl.TID, idx)
			}
			for addr, v := range a.View {
				if b.View[addr] != v {
					t.Fatalf("tid %d idx %d: view differs at 0x%x (%d vs %d)", tl.TID, idx, addr, v, b.View[addr])
				}
			}
		}
		// The final state equals the full replay's.
		full, err := replay.Run(plain, replay.Options{})
		if err != nil {
			t.Fatal(err)
		}
		st, err := replay.ThreadStateAt(framed, tl.TID, tl.Retired)
		if err != nil {
			t.Fatal(err)
		}
		if st.Cpu.Regs != full.Thread(tl.TID).FinalCpu.Regs {
			t.Fatalf("tid %d: final state differs from full replay", tl.TID)
		}
	}
}

func TestThreadStateAtErrors(t *testing.T) {
	prog, err := asm.Assemble("rp", racyCounterSrc)
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := record.Run(prog, machine.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replay.ThreadStateAt(log, 99, 0); err == nil {
		t.Error("unknown thread accepted")
	}
	if _, err := replay.ThreadStateAt(log, 0, 1<<40); err == nil {
		t.Error("out-of-range idx accepted")
	}
}

func TestKeyFrameLogsSerializeAndValidate(t *testing.T) {
	prog, err := asm.Assemble("rp", racyCounterSrc)
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := record.RunWithKeyFrames(prog, machine.Config{Seed: 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Validate(); err != nil {
		t.Fatal(err)
	}
	// Round-trip through serialization preserves frames and replayability.
	raw := trace.Marshal(log)
	log2, err := trace.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	for i, tl := range log.Threads {
		if len(log2.Threads[i].KeyFrames) != len(tl.KeyFrames) {
			t.Fatalf("thread %d: frames lost in serialization", tl.TID)
		}
	}
	if _, err := replay.Run(log2, replay.Options{}); err != nil {
		t.Fatal(err)
	}
}
