package replay

import "sort"

// VersionedMemory answers "what did address A hold just before region G
// ran?" for a fully replayed execution. It is built from the access
// streams the replay already collected, so construction is one linear
// pass and queries are binary searches.
//
// This implements the extension the paper sketches in §4.2.1: the base
// tool declares a replay failure when an alternative-order execution
// reads an address the two regions' live-ins never captured; with enough
// logged information the replay could continue instead. The versioned
// memory is exactly that information, and the classifier consults it
// when Options.UseOracle is set (ablation A3).
type VersionedMemory struct {
	versions map[uint64][]version
}

type version struct {
	global int // region (schedule index) that observed/wrote the value
	val    uint64
}

// BuildVersionedMemory indexes every access of the execution.
func BuildVersionedMemory(exec *Execution) *VersionedMemory {
	vm := &VersionedMemory{versions: make(map[uint64][]version)}
	for _, reg := range exec.Regions {
		for _, acc := range reg.Accesses {
			vs := vm.versions[acc.Addr]
			// One version per (addr, region): keep the last value the
			// region gave the address.
			if n := len(vs); n > 0 && vs[n-1].global == reg.Global {
				vs[n-1].val = acc.Val
			} else {
				vs = append(vs, version{global: reg.Global, val: acc.Val})
			}
			vm.versions[acc.Addr] = vs
		}
	}
	return vm
}

// Before returns the value addr held before region global ran: the value
// recorded by the latest region with schedule index < global. The second
// result is false when no earlier region ever touched the address.
func (vm *VersionedMemory) Before(addr uint64, global int) (uint64, bool) {
	vs := vm.versions[addr]
	// First index with vs[i].global >= global.
	i := sort.Search(len(vs), func(i int) bool { return vs[i].global >= global })
	if i == 0 {
		return 0, false
	}
	return vs[i-1].val, true
}

// Known reports whether any region ever touched addr.
func (vm *VersionedMemory) Known(addr uint64) bool { return len(vm.versions[addr]) > 0 }

// Addresses returns how many distinct addresses are versioned.
func (vm *VersionedMemory) Addresses() int { return len(vm.versions) }
