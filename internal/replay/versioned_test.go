package replay_test

import (
	"repro/internal/replay"
	"testing"

	"repro/internal/machine"
)

func TestVersionedMemoryTracksWrites(t *testing.T) {
	src := `
.word g 5
main:
  ldi r2, g
  ld r3, [r2+0]
  fence
  addi r3, r3, 2
  st [r2+0], r3
  fence
  addi r3, r3, 3
  st [r2+0], r3
  halt
`
	log, _ := recordSrc(t, src, machine.Config{Seed: 1})
	exec, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vm := replay.BuildVersionedMemory(exec)
	var gAddr uint64
	for a := range log.Prog.Data {
		gAddr = a
	}
	if !vm.Known(gAddr) {
		t.Fatal("g should be versioned")
	}
	// Region 0 observes 5; region 1 writes 7; region 2 writes 10.
	if _, ok := vm.Before(gAddr, 0); ok {
		t.Error("nothing before region 0")
	}
	if v, ok := vm.Before(gAddr, 1); !ok || v != 5 {
		t.Errorf("before region 1 = %d,%v, want 5", v, ok)
	}
	if v, ok := vm.Before(gAddr, 2); !ok || v != 7 {
		t.Errorf("before region 2 = %d,%v, want 7", v, ok)
	}
	if v, ok := vm.Before(gAddr, 99); !ok || v != 10 {
		t.Errorf("final value = %d,%v, want 10", v, ok)
	}
	if vm.Known(0xdead) {
		t.Error("untouched address should be unknown")
	}
	if vm.Addresses() == 0 {
		t.Error("no addresses versioned")
	}
}

func TestVersionedMemoryAgreesWithFinalImage(t *testing.T) {
	log, _ := recordSrc(t, racyCounterSrc, machine.Config{Seed: 5})
	exec, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vm := replay.BuildVersionedMemory(exec)
	for addr, want := range exec.FinalMem {
		if v, ok := vm.Before(addr, len(exec.Regions)+1); !ok || v != want {
			t.Errorf("addr 0x%x: versioned %d,%v vs image %d", addr, v, ok, want)
		}
	}
}
