package replay

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// ThreadState is a point-in-time per-thread state answered from a log.
type ThreadState struct {
	Cpu  machine.Cpu
	View map[uint64]uint64 // the thread's reconstructible memory view
}

// ThreadStateAt replays thread tid up to (exactly) idx retired
// instructions and returns its state. When the log carries key frames
// (record.RunWithKeyFrames), replay starts from the nearest frame at or
// before idx instead of instruction zero — iDNA's mid-log resume.
//
// The query is purely per-thread: no other thread's log is consulted,
// which is exactly the self-containedness property of iDNA logs.
func ThreadStateAt(log *trace.Log, tid int, idx uint64) (*ThreadState, error) {
	return ThreadStateAtInstrumented(log, tid, idx, nil)
}

// ThreadStateAtInstrumented is ThreadStateAt with checkpoint metrics:
// reg counts key-frame hits vs. cold replays and the instructions each
// hit saved (replay.checkpoint_* counters).
func ThreadStateAtInstrumented(log *trace.Log, tid int, idx uint64, reg *obs.Registry) (*ThreadState, error) {
	tl := log.Thread(tid)
	if tl == nil {
		return nil, fmt.Errorf("replay: no thread %d in log", tid)
	}
	if idx > tl.Retired {
		return nil, fmt.Errorf("replay: thread %d retired %d instructions, asked for %d",
			tid, tl.Retired, idx)
	}

	// Scratch execution: per-thread replay does not need the region
	// schedule, but the replayer records heap events into its exec.
	exec := &Execution{Log: log, Prog: log.Prog, FinalMem: make(map[uint64]uint64)}
	tr := newThreadReplayer(log.Prog, tl, exec, Options{SkipAccesses: true})

	// Resume from the nearest key frame at or before idx.
	frames := tl.KeyFrames
	at := sort.Search(len(frames), func(i int) bool { return frames[i].Idx > idx })
	if at == 0 {
		reg.Counter("replay.checkpoint_misses").Inc()
	}
	if at > 0 {
		kf := frames[at-1]
		reg.Counter("replay.checkpoint_hits").Inc()
		reg.Counter("replay.checkpoint_instructions_saved").Add(kf.Idx)
		tr.cpu.PC = kf.PC
		tr.cpu.Regs = kf.Regs
		tr.idx = kf.Idx
		tr.mem = make(map[uint64]uint64, len(kf.View))
		for _, v := range kf.View {
			tr.mem[v.Addr] = v.Val
		}
		tr.loadPtr = sort.Search(len(tl.Loads), func(i int) bool { return tl.Loads[i].Idx >= kf.Idx })
		tr.sysPtr = sort.Search(len(tl.SysRets), func(i int) bool { return tl.SysRets[i].Idx >= kf.Idx })
	}

	for tr.idx < idx {
		out, f := machine.Step(&tr.cpu, log.Prog.Code, tr)
		if tr.err != nil {
			return nil, tr.err
		}
		if f != nil {
			return nil, fmt.Errorf("replay: thread %d faulted at idx %d (%v); log inconsistent", tid, tr.idx, f)
		}
		switch out {
		case machine.StepBlocked:
			return nil, fmt.Errorf("replay: thread %d blocked at idx %d", tid, tr.idx)
		default:
			tr.idx++
		}
	}
	return &ThreadState{Cpu: tr.cpu, View: tr.mem}, nil
}
