package replay_test

import (
	"repro/internal/replay"
	"testing"

	"repro/internal/machine"
)

func TestSessionStepMatchesRun(t *testing.T) {
	log, _ := recordSrc(t, racyCounterSrc, machine.Config{Seed: 8})
	full, err := replay.Run(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := replay.NewSession(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for !sess.Done() {
		if err := sess.StepRegion(); err != nil {
			t.Fatal(err)
		}
	}
	exec, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range full.Threads {
		got := exec.Thread(th.TID)
		if got.FinalCpu.Regs != th.FinalCpu.Regs {
			t.Errorf("thread %d state differs between replay.Run and stepped session", th.TID)
		}
	}
	for addr, v := range full.FinalMem {
		if exec.FinalMem[addr] != v {
			t.Errorf("memory image differs at 0x%x", addr)
		}
	}
	if err := sess.StepRegion(); err == nil {
		t.Error("stepping past the end should fail")
	}
}

func TestSnapshotRestoreReproducesExactly(t *testing.T) {
	log, _ := recordSrc(t, racyCounterSrc, machine.Config{Seed: 3})
	sess, err := replay.NewSession(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := len(sess.Exec().Regions)
	mid := total / 2

	// Run to the midpoint, snapshot, run to the end, capture final state.
	for sess.Pos() < mid {
		if err := sess.StepRegion(); err != nil {
			t.Fatal(err)
		}
	}
	snap := sess.Snapshot()
	if snap.Pos() != mid {
		t.Fatalf("snapshot pos = %d, want %d", snap.Pos(), mid)
	}
	midMem := copyMap(sess.Exec().FinalMem)

	for !sess.Done() {
		if err := sess.StepRegion(); err != nil {
			t.Fatal(err)
		}
	}
	endMem := copyMap(sess.Exec().FinalMem)
	endCpu, _ := sess.ThreadCpu(0)

	// Rewind: state must equal the midpoint exactly.
	sess.Restore(snap)
	if sess.Pos() != mid {
		t.Fatalf("restored pos = %d", sess.Pos())
	}
	if len(sess.Exec().FinalMem) != len(midMem) {
		t.Error("restored memory image size differs")
	}
	for addr, v := range midMem {
		if sess.Exec().FinalMem[addr] != v {
			t.Errorf("restored image differs at 0x%x", addr)
		}
	}

	// Replaying forward from the snapshot must land on the same end state.
	for !sess.Done() {
		if err := sess.StepRegion(); err != nil {
			t.Fatal(err)
		}
	}
	for addr, v := range endMem {
		if sess.Exec().FinalMem[addr] != v {
			t.Errorf("re-run image differs at 0x%x", addr)
		}
	}
	cpu, ok := sess.ThreadCpu(0)
	if !ok || cpu.Regs != endCpu.Regs {
		t.Error("re-run thread state differs")
	}
	if _, ok := sess.ThreadCpu(99); ok {
		t.Error("phantom thread")
	}
}

func TestSnapshotRestoreRepeatedly(t *testing.T) {
	// Restoring the same snapshot many times and replaying different
	// distances must always be consistent (no state leaks across restores).
	log, _ := recordSrc(t, racyCounterSrc, machine.Config{Seed: 12})
	sess, err := replay.NewSession(log, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.StepRegion(); err != nil {
		t.Fatal(err)
	}
	snap := sess.Snapshot()
	want := make(map[int]map[uint64]uint64)
	for _, dist := range []int{1, 3, 1, 3, 2, 1} {
		sess.Restore(snap)
		for i := 0; i < dist && !sess.Done(); i++ {
			if err := sess.StepRegion(); err != nil {
				t.Fatal(err)
			}
		}
		img := copyMap(sess.Exec().FinalMem)
		if prev, seen := want[dist]; seen {
			if len(prev) != len(img) {
				t.Fatalf("distance %d: image size changed across restores", dist)
			}
			for a, v := range prev {
				if img[a] != v {
					t.Fatalf("distance %d: image differs at 0x%x", dist, a)
				}
			}
		} else {
			want[dist] = img
		}
	}
}

// copyMap snapshots a memory image; the replay package keeps its own
// unexported twin for Session.Snapshot.
func copyMap(m map[uint64]uint64) map[uint64]uint64 {
	out := make(map[uint64]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
