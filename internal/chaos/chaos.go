// Package chaos is the fault-injection side of the pipeline's
// robustness contract. The paper's replay analysis already treats
// imperfect replays as a first-class outcome (Replay-Failure, §3.3);
// this package extends the same posture to the log files themselves: a
// deterministic, seeded corruption injector over serialized replay logs
// plus a scenario runner that asserts the decode contract under every
// corruption —
//
//	never panic, never allocate unbounded, always return a typed error
//	or a valid (degraded-but-labeled) log.
//
// The injector corrupts at two layers, matching what a real log store
// can hand the offline analysis: raw-payload corruptions (bit flips,
// truncation, varint-length inflation, field mutation, duplicated and
// dropped sequencers) are applied to the marshalled log and then
// re-compressed into a well-formed container, while container
// corruptions (bad magic, garbage tail) break the compressed file
// itself. Everything is deterministic in (seed, trial index), so a
// failing trial reproduces from its two integers.
package chaos

import (
	"fmt"
	"math/rand"

	"repro/internal/trace"
)

// Kind is one corruption strategy.
type Kind int

const (
	// KindBitFlip flips a single random bit of the raw payload.
	KindBitFlip Kind = iota
	// KindTruncate cuts the raw payload at a random point.
	KindTruncate
	// KindInflateLength splices a maximal varint over a random payload
	// byte — wherever that byte was a length or count prefix, the
	// decoder sees an absurd claim it must reject before allocating.
	KindInflateLength
	// KindMutateField overwrites a short random span with random bytes.
	KindMutateField
	// KindDupSequencer re-marshals the log with one sequencer entry
	// duplicated (a structured corruption: bytes stay well-formed, the
	// log breaks a replay invariant instead).
	KindDupSequencer
	// KindDropSequencer re-marshals the log with one sequencer removed.
	KindDropSequencer
	// KindBadMagic corrupts the container's magic string.
	KindBadMagic
	// KindGarbageTail replaces the tail of the container, from a random
	// point to the end, with random garbage — breaking the flate stream
	// (v1) or a run of segments (v2).
	KindGarbageTail
	// KindIndexCorrupt flips a byte inside a v2 container's segment
	// index, so the index checksum or the canonical-layout checks must
	// reject the log before any segment is touched. On a v1 container it
	// degrades to KindMutateField over the raw payload.
	KindIndexCorrupt
	// KindTornSegment garbages a v2 container from a random point inside
	// one segment's payload through the end — the on-disk shape of a
	// write torn mid-segment. On v1 it degrades to KindTruncate.
	KindTornSegment
	// KindVarintOverrun overwrites a span of one v2 segment's payload
	// with maximal varint bytes and repairs the checksums, so the overrun
	// reaches the varint parser itself rather than dying at the CRC gate.
	// On v1 it degrades to KindInflateLength.
	KindVarintOverrun

	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindBitFlip:
		return "bit-flip"
	case KindTruncate:
		return "truncate"
	case KindInflateLength:
		return "inflate-length"
	case KindMutateField:
		return "mutate-field"
	case KindDupSequencer:
		return "dup-sequencer"
	case KindDropSequencer:
		return "drop-sequencer"
	case KindBadMagic:
		return "bad-magic"
	case KindGarbageTail:
		return "garbage-tail"
	case KindIndexCorrupt:
		return "index-corrupt"
	case KindTornSegment:
		return "torn-segment"
	case KindVarintOverrun:
		return "varint-overrun"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Kinds lists every corruption kind, in injection rotation order.
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Injector produces deterministic corruptions of a log: equal (seed,
// trial) pairs always yield identical bytes.
type Injector struct {
	seed int64
}

// NewInjector returns an injector whose output is a pure function of
// seed and the trial index.
func NewInjector(seed int64) *Injector { return &Injector{seed: seed} }

// rng derives the per-trial random stream.
func (in *Injector) rng(trial int) *rand.Rand {
	return rand.New(rand.NewSource(in.seed*1_000_003 + int64(trial)))
}

// CorruptFile returns the trial-th corruption of a compressed log
// container, cycling through every Kind so any N >= len(Kinds()) trials
// cover the full taxonomy. The result is what a corrupt .rlog file on
// disk would look like.
func (in *Injector) CorruptFile(container []byte, trial int) ([]byte, Kind) {
	kind := Kind(trial % int(numKinds))
	return in.CorruptFileKind(container, kind, trial), kind
}

// CorruptFileKind applies one specific corruption kind to a log
// container of either format, deterministically in (seed, trial). On v1
// containers the payload kinds decompress, corrupt the raw bytes, and
// recompress; on v2 containers they target the segmented layout
// directly (see corruptV2). The v2-specific kinds degrade to their
// closest v1 analogue on a v1 container, so the kind rotation is total
// over both formats.
func (in *Injector) CorruptFileKind(container []byte, kind Kind, trial int) []byte {
	rng := in.rng(trial)
	switch kind {
	case KindBadMagic, KindGarbageTail:
		return corruptContainer(clone(container), kind, rng)
	}
	if trace.SniffFormat(container) == trace.FormatV2 {
		return corruptV2(clone(container), kind, rng)
	}
	raw, err := trace.Decompress(container)
	if err != nil {
		// Not a valid container to start from: fall back to corrupting
		// the container bytes directly.
		return corruptContainer(clone(container), KindGarbageTail, rng)
	}
	switch kind {
	case KindIndexCorrupt:
		kind = KindMutateField
	case KindTornSegment:
		kind = KindTruncate
	case KindVarintOverrun:
		kind = KindInflateLength
	}
	return trace.Compress(CorruptRaw(raw, kind, rng))
}

// corruptV2 applies kind to a v2 container in place. Byte-level kinds
// hit the container bytes (the CRC gates are part of the contract under
// test); the structured kinds re-encode a mutated log in the same
// format; the v2-specific kinds target the layout's own structures —
// index, packed segments, varint streams.
func corruptV2(data []byte, kind Kind, rng *rand.Rand) []byte {
	spans, ok := trace.V2SegmentSpans(data)
	if !ok || len(spans) == 0 {
		return corruptContainer(data, KindGarbageTail, rng)
	}
	switch kind {
	case KindBitFlip, KindTruncate, KindInflateLength, KindMutateField:
		// Raw byte corruptions apply to the container as a whole; the
		// decoder must answer with header, index, or segment errors.
		return CorruptRaw(data, kind, rng)
	case KindDupSequencer, KindDropSequencer:
		log, err := trace.Decode(data)
		if err != nil || len(log.Threads) == 0 {
			return CorruptRaw(data, KindBitFlip, rng)
		}
		t := log.Threads[rng.Intn(len(log.Threads))]
		if len(t.Seqs) == 0 {
			return CorruptRaw(data, KindBitFlip, rng)
		}
		if kind == KindDupSequencer {
			t.Seqs = dupSeq(t.Seqs, rng.Intn(len(t.Seqs)))
		} else {
			t.Seqs = dropSeq(t.Seqs, rng.Intn(len(t.Seqs)))
		}
		return trace.MarshalV2(log)
	case KindIndexCorrupt:
		// [5, payloadStart) covers version, flags, count, index CRC, and
		// the index entries — everything the header/index parser guards.
		idxEnd := spans[0][0]
		i := 5 + rng.Intn(idxEnd-5)
		data[i] ^= 1 << uint(rng.Intn(8))
		return data
	case KindTornSegment:
		s := spans[rng.Intn(len(spans))]
		start := s[0]
		if s[1] > s[0] {
			start += rng.Intn(s[1] - s[0])
		}
		for i := start; i < len(data); i++ {
			data[i] = byte(rng.Intn(256))
		}
		return data
	case KindVarintOverrun:
		seg := rng.Intn(len(spans))
		trace.RewriteV2Segment(data, seg, func(payload []byte) {
			if len(payload) == 0 {
				return
			}
			// A maximal 10-byte uvarint (2^63) overwrites a random span,
			// truncated at the payload end so the layout stays intact.
			huge := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
			pos := rng.Intn(len(payload))
			copy(payload[pos:], huge)
		})
		return data
	}
	return CorruptRaw(data, KindBitFlip, rng)
}

// CorruptRaw applies kind to a raw (uncompressed) marshalled log,
// drawing any needed randomness from rng. The input slice is not
// modified.
func CorruptRaw(raw []byte, kind Kind, rng *rand.Rand) []byte {
	out := clone(raw)
	switch kind {
	case KindBitFlip:
		if len(out) > 0 {
			i := rng.Intn(len(out))
			out[i] ^= 1 << uint(rng.Intn(8))
		}
	case KindTruncate:
		if len(out) > 1 {
			out = out[:rng.Intn(len(out)-1)+1]
		}
	case KindInflateLength:
		// A maximal 10-byte uvarint (2^63) spliced over one byte.
		if len(out) > 6 {
			pos := 6 + rng.Intn(len(out)-6) // keep magic + version intact
			huge := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
			spliced := make([]byte, 0, len(out)+len(huge))
			spliced = append(spliced, out[:pos]...)
			spliced = append(spliced, huge...)
			spliced = append(spliced, out[pos+1:]...)
			out = spliced
		}
	case KindMutateField:
		if len(out) > 0 {
			span := 1 + rng.Intn(8)
			pos := rng.Intn(len(out))
			for i := pos; i < len(out) && i < pos+span; i++ {
				out[i] = byte(rng.Intn(256))
			}
		}
	case KindDupSequencer:
		out = mutateSequencers(out, rng, dupSeq)
	case KindDropSequencer:
		out = mutateSequencers(out, rng, dropSeq)
	case KindBadMagic:
		if len(out) > 0 {
			out[rng.Intn(min(5, len(out)))] ^= 0xff
		}
	case KindGarbageTail:
		for i := max(0, len(out)-1-rng.Intn(16)); i < len(out); i++ {
			out[i] = byte(rng.Intn(256))
		}
	}
	return out
}

// dupSeq and dropSeq are the structured sequencer edits, shared by the
// v1 raw path and the v2 re-encode path.
func dupSeq(seqs []trace.Sequencer, i int) []trace.Sequencer {
	dup := make([]trace.Sequencer, 0, len(seqs)+1)
	dup = append(dup, seqs[:i+1]...)
	dup = append(dup, seqs[i:]...)
	return dup
}

func dropSeq(seqs []trace.Sequencer, i int) []trace.Sequencer {
	drop := make([]trace.Sequencer, 0, len(seqs)-1)
	drop = append(drop, seqs[:i]...)
	drop = append(drop, seqs[i+1:]...)
	return drop
}

// mutateSequencers parses a raw log, rewrites one thread's sequencer
// stream with edit, and re-marshals — a structured corruption that
// keeps the byte format intact while breaking a replay invariant. If
// the input does not parse, it falls back to a bit flip.
func mutateSequencers(raw []byte, rng *rand.Rand, edit func(seqs []trace.Sequencer, i int) []trace.Sequencer) []byte {
	log, err := trace.Unmarshal(raw)
	if err != nil || len(log.Threads) == 0 {
		return CorruptRaw(raw, KindBitFlip, rng)
	}
	t := log.Threads[rng.Intn(len(log.Threads))]
	if len(t.Seqs) == 0 {
		return CorruptRaw(raw, KindBitFlip, rng)
	}
	t.Seqs = edit(t.Seqs, rng.Intn(len(t.Seqs)))
	return trace.Marshal(log)
}

// corruptContainer applies the container-level kinds in place.
func corruptContainer(data []byte, kind Kind, rng *rand.Rand) []byte {
	if len(data) == 0 {
		return []byte{0xff}
	}
	switch kind {
	case KindBadMagic:
		data[rng.Intn(min(5, len(data)))] ^= 0xff
	default: // KindGarbageTail
		start := rng.Intn(len(data))
		for i := start; i < len(data); i++ {
			data[i] = byte(rng.Intn(256))
		}
	}
	return data
}

// KnownBad returns, for every corruption kind, container bytes that are
// guaranteed to fail the full sniffing decode path with thread salvage
// on — the exact path analyze-dir and serve run — so every corpus entry
// quarantines the whole log, never just a thread. Kinds whose random
// draw happens to produce a decodable input (a bit flip in a don't-care
// byte, a torn v2 segment salvage confines to one thread) are retried
// on successive trials; a kind that cannot be made to fail after
// maxTries is skipped. This is the generator behind testdata/corrupt.
func KnownBad(container []byte, seed int64) map[Kind][]byte {
	const maxTries = 256
	in := NewInjector(seed)
	out := make(map[Kind][]byte, numKinds)
	for _, kind := range Kinds() {
		for try := 0; try < maxTries; try++ {
			bad := in.CorruptFileKind(container, kind, int(kind)+int(numKinds)*try)
			if decodeFails(bad) {
				out[kind] = bad
				break
			}
		}
	}
	return out
}

// decodeFails reports whether the sniffing file decode path — thread
// salvage included, as analyze-dir and serve run it — rejects data.
func decodeFails(data []byte) bool {
	log, _, err := trace.DecodeOpts(data, trace.V2Options{QuarantineThreads: true})
	if err != nil {
		return true
	}
	return trace.Validate(log) != nil
}

func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
