// Package chaos is the fault-injection side of the pipeline's
// robustness contract. The paper's replay analysis already treats
// imperfect replays as a first-class outcome (Replay-Failure, §3.3);
// this package extends the same posture to the log files themselves: a
// deterministic, seeded corruption injector over serialized replay logs
// plus a scenario runner that asserts the decode contract under every
// corruption —
//
//	never panic, never allocate unbounded, always return a typed error
//	or a valid (degraded-but-labeled) log.
//
// The injector corrupts at two layers, matching what a real log store
// can hand the offline analysis: raw-payload corruptions (bit flips,
// truncation, varint-length inflation, field mutation, duplicated and
// dropped sequencers) are applied to the marshalled log and then
// re-compressed into a well-formed container, while container
// corruptions (bad magic, garbage tail) break the compressed file
// itself. Everything is deterministic in (seed, trial index), so a
// failing trial reproduces from its two integers.
package chaos

import (
	"fmt"
	"math/rand"

	"repro/internal/trace"
)

// Kind is one corruption strategy.
type Kind int

const (
	// KindBitFlip flips a single random bit of the raw payload.
	KindBitFlip Kind = iota
	// KindTruncate cuts the raw payload at a random point.
	KindTruncate
	// KindInflateLength splices a maximal varint over a random payload
	// byte — wherever that byte was a length or count prefix, the
	// decoder sees an absurd claim it must reject before allocating.
	KindInflateLength
	// KindMutateField overwrites a short random span with random bytes.
	KindMutateField
	// KindDupSequencer re-marshals the log with one sequencer entry
	// duplicated (a structured corruption: bytes stay well-formed, the
	// log breaks a replay invariant instead).
	KindDupSequencer
	// KindDropSequencer re-marshals the log with one sequencer removed.
	KindDropSequencer
	// KindBadMagic corrupts the container's magic string.
	KindBadMagic
	// KindGarbageTail replaces the tail of the compressed container
	// with random garbage, breaking the flate stream.
	KindGarbageTail

	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindBitFlip:
		return "bit-flip"
	case KindTruncate:
		return "truncate"
	case KindInflateLength:
		return "inflate-length"
	case KindMutateField:
		return "mutate-field"
	case KindDupSequencer:
		return "dup-sequencer"
	case KindDropSequencer:
		return "drop-sequencer"
	case KindBadMagic:
		return "bad-magic"
	case KindGarbageTail:
		return "garbage-tail"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Kinds lists every corruption kind, in injection rotation order.
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Injector produces deterministic corruptions of a log: equal (seed,
// trial) pairs always yield identical bytes.
type Injector struct {
	seed int64
}

// NewInjector returns an injector whose output is a pure function of
// seed and the trial index.
func NewInjector(seed int64) *Injector { return &Injector{seed: seed} }

// rng derives the per-trial random stream.
func (in *Injector) rng(trial int) *rand.Rand {
	return rand.New(rand.NewSource(in.seed*1_000_003 + int64(trial)))
}

// CorruptFile returns the trial-th corruption of a compressed log
// container, cycling through every Kind so any N >= len(Kinds()) trials
// cover the full taxonomy. The result is what a corrupt .rlog file on
// disk would look like.
func (in *Injector) CorruptFile(container []byte, trial int) ([]byte, Kind) {
	kind := Kind(trial % int(numKinds))
	return in.CorruptFileKind(container, kind, trial), kind
}

// CorruptFileKind applies one specific corruption kind to a compressed
// log container, deterministically in (seed, trial).
func (in *Injector) CorruptFileKind(container []byte, kind Kind, trial int) []byte {
	rng := in.rng(trial)
	switch kind {
	case KindBadMagic, KindGarbageTail:
		return corruptContainer(clone(container), kind, rng)
	}
	raw, err := trace.Decompress(container)
	if err != nil {
		// Not a valid container to start from: fall back to corrupting
		// the container bytes directly.
		return corruptContainer(clone(container), KindGarbageTail, rng)
	}
	return trace.Compress(CorruptRaw(raw, kind, rng))
}

// CorruptRaw applies kind to a raw (uncompressed) marshalled log,
// drawing any needed randomness from rng. The input slice is not
// modified.
func CorruptRaw(raw []byte, kind Kind, rng *rand.Rand) []byte {
	out := clone(raw)
	switch kind {
	case KindBitFlip:
		if len(out) > 0 {
			i := rng.Intn(len(out))
			out[i] ^= 1 << uint(rng.Intn(8))
		}
	case KindTruncate:
		if len(out) > 1 {
			out = out[:rng.Intn(len(out)-1)+1]
		}
	case KindInflateLength:
		// A maximal 10-byte uvarint (2^63) spliced over one byte.
		if len(out) > 6 {
			pos := 6 + rng.Intn(len(out)-6) // keep magic + version intact
			huge := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
			spliced := make([]byte, 0, len(out)+len(huge))
			spliced = append(spliced, out[:pos]...)
			spliced = append(spliced, huge...)
			spliced = append(spliced, out[pos+1:]...)
			out = spliced
		}
	case KindMutateField:
		if len(out) > 0 {
			span := 1 + rng.Intn(8)
			pos := rng.Intn(len(out))
			for i := pos; i < len(out) && i < pos+span; i++ {
				out[i] = byte(rng.Intn(256))
			}
		}
	case KindDupSequencer:
		out = mutateSequencers(out, rng, func(seqs []trace.Sequencer, i int) []trace.Sequencer {
			dup := make([]trace.Sequencer, 0, len(seqs)+1)
			dup = append(dup, seqs[:i+1]...)
			dup = append(dup, seqs[i:]...)
			return dup
		})
	case KindDropSequencer:
		out = mutateSequencers(out, rng, func(seqs []trace.Sequencer, i int) []trace.Sequencer {
			drop := make([]trace.Sequencer, 0, len(seqs)-1)
			drop = append(drop, seqs[:i]...)
			drop = append(drop, seqs[i+1:]...)
			return drop
		})
	case KindBadMagic:
		if len(out) > 0 {
			out[rng.Intn(min(5, len(out)))] ^= 0xff
		}
	case KindGarbageTail:
		for i := max(0, len(out)-1-rng.Intn(16)); i < len(out); i++ {
			out[i] = byte(rng.Intn(256))
		}
	}
	return out
}

// mutateSequencers parses a raw log, rewrites one thread's sequencer
// stream with edit, and re-marshals — a structured corruption that
// keeps the byte format intact while breaking a replay invariant. If
// the input does not parse, it falls back to a bit flip.
func mutateSequencers(raw []byte, rng *rand.Rand, edit func(seqs []trace.Sequencer, i int) []trace.Sequencer) []byte {
	log, err := trace.Unmarshal(raw)
	if err != nil || len(log.Threads) == 0 {
		return CorruptRaw(raw, KindBitFlip, rng)
	}
	t := log.Threads[rng.Intn(len(log.Threads))]
	if len(t.Seqs) == 0 {
		return CorruptRaw(raw, KindBitFlip, rng)
	}
	t.Seqs = edit(t.Seqs, rng.Intn(len(t.Seqs)))
	return trace.Marshal(log)
}

// corruptContainer applies the container-level kinds in place.
func corruptContainer(data []byte, kind Kind, rng *rand.Rand) []byte {
	if len(data) == 0 {
		return []byte{0xff}
	}
	switch kind {
	case KindBadMagic:
		data[rng.Intn(min(5, len(data)))] ^= 0xff
	default: // KindGarbageTail
		start := len(data) / 2
		for i := start; i < len(data); i++ {
			data[i] = byte(rng.Intn(256))
		}
	}
	return data
}

// KnownBad returns, for every corruption kind, container bytes that are
// guaranteed to fail the full decode path (Decompress + Unmarshal +
// Validate). Kinds whose random draw happens to produce a still-valid
// log (a bit flip in a don't-care byte, a dropped sequencer the
// validator tolerates) are retried on successive trials; a kind that
// cannot be made to fail after maxTries is skipped. This is the
// generator behind testdata/corrupt.
func KnownBad(container []byte, seed int64) map[Kind][]byte {
	const maxTries = 256
	in := NewInjector(seed)
	out := make(map[Kind][]byte, numKinds)
	for _, kind := range Kinds() {
		for try := 0; try < maxTries; try++ {
			bad := in.CorruptFileKind(container, kind, int(kind)+int(numKinds)*try)
			if decodeFails(bad) {
				out[kind] = bad
				break
			}
		}
	}
	return out
}

// decodeFails reports whether the full file decode path rejects data.
func decodeFails(data []byte) bool {
	raw, err := trace.Decompress(data)
	if err != nil {
		return true
	}
	log, err := trace.Unmarshal(raw)
	if err != nil {
		return true
	}
	return trace.Validate(log) != nil
}

func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
