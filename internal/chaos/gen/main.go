// Command gen regenerates the checked-in corruption corpora from the
// exec01 recording, deterministically:
//
//   - testdata/corrupt/<kind>.rlog — one known-bad v1 container per
//     corruption kind, consumed by the trace decode tests and the CLI
//     quarantine test;
//   - testdata/corrupt/v2-<kind>.rlog — the same over the segmented v2
//     container (kinds whose damage always salvages may be absent);
//   - internal/trace/testdata/fuzz/FuzzUnmarshal/chaos-<kind> — the
//     same corruptions as raw (uncompressed) payloads, seeding the
//     decoder fuzzer;
//   - internal/trace/testdata/fuzz/FuzzDecodeV2/chaos-* — corrupted and
//     intact v2 containers seeding the segmented-decoder fuzzer;
//   - internal/isa/testdata/fuzz/FuzzDecode/chaos-flip-<i> — bit-flipped
//     instruction encodings seeding the instruction fuzzer.
//
// Run from the repo root: go run ./internal/chaos/gen
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/chaos"
	"repro/internal/isa"
	"repro/internal/record"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	root := flag.String("root", ".", "repository root to write corpora under")
	seed := flag.Int64("seed", 1, "corruption seed")
	flag.Parse()

	s, err := workloads.FindScenario("exec01")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := s.Program()
	if err != nil {
		log.Fatal(err)
	}
	rlog, _, err := record.Run(prog, s.Config())
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, rlog); err != nil {
		log.Fatal(err)
	}

	bad := chaos.KnownBad(buf.Bytes(), *seed)
	corruptDir := filepath.Join(*root, "testdata", "corrupt")
	fuzzDir := filepath.Join(*root, "internal", "trace", "testdata", "fuzz", "FuzzUnmarshal")
	for _, dir := range []string{corruptDir, fuzzDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	for kind, data := range bad {
		path := filepath.Join(corruptDir, kind.String()+".rlog")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			log.Fatal(err)
		}
		// Seed the decoder fuzzer with the corruption's raw payload; a
		// container-level corruption (bad magic, flipped compressed
		// bytes) rarely decompresses, so fall back to the bytes as-is.
		raw, err := trace.Decompress(data)
		if err != nil {
			raw = data
		}
		if err := writeSeed(filepath.Join(fuzzDir, "chaos-"+kind.String()), raw); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}

	// The same sweep over the segmented v2 container. Corruptions that
	// confine their damage to one thread segment salvage instead of
	// failing, so KnownBad may skip a kind here; consumers glob.
	v2 := trace.MarshalV2(rlog)
	v2Dir := filepath.Join(*root, "internal", "trace", "testdata", "fuzz", "FuzzDecodeV2")
	if err := os.MkdirAll(v2Dir, 0o755); err != nil {
		log.Fatal(err)
	}
	badV2 := chaos.KnownBad(v2, *seed)
	for kind, data := range badV2 {
		path := filepath.Join(corruptDir, "v2-"+kind.String()+".rlog")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			log.Fatal(err)
		}
		if err := writeSeed(filepath.Join(v2Dir, "chaos-"+kind.String()), data); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}
	if err := writeSeed(filepath.Join(v2Dir, "chaos-intact"), v2); err != nil {
		log.Fatal(err)
	}

	// Instruction fuzzer seeds: encoded instructions with one bit flipped.
	isaDir := filepath.Join(*root, "internal", "isa", "testdata", "fuzz", "FuzzDecode")
	if err := os.MkdirAll(isaDir, 0o755); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	for i := 0; i < 8 && i < len(prog.Code); i++ {
		enc := isa.Encode(nil, prog.Code[i*len(prog.Code)/8])
		enc[rng.Intn(len(enc))] ^= 1 << rng.Intn(8)
		if err := writeSeed(filepath.Join(isaDir, fmt.Sprintf("chaos-flip-%d", i)), enc); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote fuzz seeds under %s and %s\n", fuzzDir, isaDir)
}

// writeSeed writes one corpus entry in the `go test fuzz v1` format.
func writeSeed(path string, data []byte) error {
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	return os.WriteFile(path, []byte(body), 0o644)
}
