package chaos_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// The test lives in package chaos_test so it can stand up a real
// analysis service (internal/serve) as the target without the chaos
// package itself depending on it.

func recordContainer(t *testing.T) []byte {
	t.Helper()
	s, err := workloads.FindScenario("exec01")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := s.Program()
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := core.Record(prog, s.Config())
	if err != nil {
		t.Fatal(err)
	}
	return trace.Compress(trace.Marshal(log))
}

// TestRunHTTPContract fires the full hostile sweep — every corruption
// kind, truncated uploads, slow-loris dribbles — at a live analysis
// service and asserts the service contract: no 5xx, no handler panics,
// daemon still serving afterwards.
func TestRunHTTPContract(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := serve.New(serve.Config{DataDir: t.TempDir(), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	container := recordContainer(t)
	rep := chaos.RunHTTP(ts.URL, container, 16, 1, nil)
	if v := rep.Violations(); v != 0 {
		t.Fatalf("service contract violated %d times:\n%s", v, rep.Summary())
	}
	if !rep.Alive {
		t.Fatal("service dead after sweep")
	}
	if rep.HTTPPanics != 0 {
		t.Fatalf("handler panics = %d", rep.HTTPPanics)
	}
	for _, tr := range rep.Trials {
		if tr.Status >= 500 {
			t.Errorf("trial %d (%s): status %d", tr.Index, tr.Attack, tr.Status)
		}
	}
	// Sixteen trials cycle the whole corruption taxonomy (8 kinds) at
	// least twice; every response must have been a quarantine/rejection
	// or a clean accept of a still-valid mutant.
	if rep.Rejected+rep.Accepted+rep.Transport != len(rep.Trials) {
		t.Fatalf("trials unaccounted: %d rejected + %d accepted + %d transport != %d",
			rep.Rejected, rep.Accepted, rep.Transport, len(rep.Trials))
	}
	if rep.Rejected == 0 {
		t.Fatal("no hostile request was rejected — the sweep tested nothing")
	}

	// Drain so accepted still-valid mutants finish before cleanup.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after sweep: %v", err)
	}
}

// TestRunHTTPDetectsDeadService: a wrong endpoint must count as a
// violation, not silently pass.
func TestRunHTTPDetectsDeadService(t *testing.T) {
	rep := chaos.RunHTTP("http://127.0.0.1:1", []byte("x"), 1, 1, nil)
	if rep.Alive {
		t.Fatal("unreachable service reported alive")
	}
	if rep.Violations() == 0 {
		t.Fatal("dead service counted zero violations")
	}
}
