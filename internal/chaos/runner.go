package chaos

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/trace"
)

// allocBudget is the per-trial allocation ceiling: a decode of an
// n-byte input may allocate at most allocSlackBytes plus
// allocFactor * n before the runner flags it as unbounded. The factor
// covers the decoder's legitimate expansion (varint streams inflate
// into 24-byte records, plus parser scratch); the slack absorbs fixed
// costs on tiny inputs.
const (
	allocFactor     = 64
	allocSlackBytes = 1 << 20
)

// Trial is the outcome of decoding one corrupted log.
type Trial struct {
	Index      int
	Kind       Kind
	InputBytes int
	AllocBytes uint64
	Err        error // nil when the corrupted log still decoded to a valid log
	Salvaged   int   // thread segments quarantined by a v2 salvage decode
	Panicked   bool
	PanicValue string
	Unbounded  bool
}

// Report aggregates a chaos run against the decode contract: never
// panic, never allocate unbounded, always a typed error or a valid log.
type Report struct {
	Seed      int64
	Trials    []Trial
	Panics    int
	Unbounded int
	Untyped   int // errors that are neither *DecodeError nor *ValidateError
	Accepted  int // corruptions the decoder still accepted as valid logs
	Rejected  int
	Salvaged  int // trials a v2 salvage decode accepted minus corrupt threads
	MaxAlloc  uint64
}

// Violations counts contract breaches: panics, unbounded allocations,
// and untyped errors.
func (r *Report) Violations() int { return r.Panics + r.Unbounded + r.Untyped }

// ByKind tallies (trials, rejected) per corruption kind.
func (r *Report) ByKind() map[Kind][2]int {
	out := make(map[Kind][2]int)
	for _, t := range r.Trials {
		c := out[t.Kind]
		c[0]++
		if t.Err != nil {
			c[1]++
		}
		out[t.Kind] = c
	}
	return out
}

// Summary renders the human-readable contract report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: %d corruptions (seed %d): %d rejected, %d accepted as still-valid (%d salvaged)\n",
		len(r.Trials), r.Seed, r.Rejected, r.Accepted, r.Salvaged)
	byKind := r.ByKind()
	kinds := make([]Kind, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		c := byKind[k]
		fmt.Fprintf(&b, "  %-16s %4d trials, %4d rejected\n", k, c[0], c[1])
	}
	fmt.Fprintf(&b, "contract: %d panics, %d unbounded allocations, %d untyped errors (peak alloc %d bytes/trial)\n",
		r.Panics, r.Unbounded, r.Untyped, r.MaxAlloc)
	return b.String()
}

// Run corrupts the container n times with a deterministic injector and
// drives each mutant through the full sniffing file-decode path (either
// container format, thread salvage on, Validate), checking the contract
// on every trial. The optional registry receives chaos.* counters (nil
// is off, as everywhere).
func Run(container []byte, n int, seed int64, reg *obs.Registry) *Report {
	in := NewInjector(seed)
	rep := &Report{Seed: seed}
	for i := 0; i < n; i++ {
		data, kind := in.CorruptFile(container, i)
		t := decodeTrial(data)
		t.Index, t.Kind = i, kind
		if t.Panicked {
			rep.Panics++
			reg.Counter("chaos.panics").Inc()
			reg.EmitLabeled("chaos.violation", "panic", uint64(i))
			reg.Logger().Error("chaos contract violation",
				"violation", "panic", "trial", i, "kind", kind.String())
		}
		if t.Unbounded {
			rep.Unbounded++
			reg.Counter("chaos.unbounded_allocs").Inc()
			reg.EmitLabeled("chaos.violation", "unbounded-alloc", uint64(i))
			reg.Logger().Error("chaos contract violation",
				"violation", "unbounded-alloc", "trial", i, "kind", kind.String(),
				"alloc_bytes", t.AllocBytes, "input_bytes", t.InputBytes)
		}
		if t.Err != nil {
			rep.Rejected++
			if !typedError(t.Err) {
				rep.Untyped++
				reg.Counter("chaos.untyped_errors").Inc()
				reg.EmitLabeled("chaos.violation", "untyped-error", uint64(i))
				reg.Logger().Error("chaos contract violation",
					"violation", "untyped-error", "trial", i, "kind", kind.String(),
					"err", t.Err.Error())
			}
		} else if !t.Panicked {
			rep.Accepted++
			if t.Salvaged > 0 {
				rep.Salvaged++
				reg.Counter("chaos.salvaged").Inc()
			}
		}
		if t.AllocBytes > rep.MaxAlloc {
			rep.MaxAlloc = t.AllocBytes
		}
		rep.Trials = append(rep.Trials, t)
		reg.Counter("chaos.trials").Inc()
		reg.Histogram("chaos.trial_alloc_bytes").Observe(int(t.AllocBytes))
	}
	return rep
}

// decodeTrial runs one corrupted file through the decode path under a
// panic guard, measuring the bytes it allocates.
func decodeTrial(data []byte) (t Trial) {
	t.InputBytes = len(data)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Panicked = true
				t.PanicValue = fmt.Sprintf("%v\n%s", r, debug.Stack())
			}
		}()
		log, faults, err := trace.DecodeOpts(data, trace.V2Options{QuarantineThreads: true})
		if err == nil {
			t.Salvaged = len(faults)
			err = trace.Validate(log)
		}
		t.Err = err
	}()
	runtime.ReadMemStats(&after)
	t.AllocBytes = after.TotalAlloc - before.TotalAlloc
	t.Unbounded = t.AllocBytes > uint64(allocFactor*len(data))+allocSlackBytes
	return t
}

// typedError reports whether err is one of the trace package's typed
// failures — the only error classes the decode contract permits.
func typedError(err error) bool {
	var de *trace.DecodeError
	var ve *trace.ValidateError
	return errors.As(err, &de) || errors.As(err, &ve)
}
