package chaos

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// HTTPTrial is the outcome of one hostile request against a running
// analysis service.
type HTTPTrial struct {
	Index  int
	Attack string // corruption kind, "truncated", "slow-loris", or "clean"
	Status int    // HTTP status, 0 when the request died in transport
	Err    string // transport error, if any
}

// HTTPReport aggregates a chaos sweep against the service contract: a
// hostile upload may be quarantined (400), rejected (413/429/503), or —
// when the corruption happened to leave the log valid — accepted (202),
// but the daemon must never answer 5xx, never panic in a handler, and
// must still be serving when the sweep ends.
type HTTPReport struct {
	Seed       int64
	Trials     []HTTPTrial
	FiveXX     int    // responses with status >= 500
	Transport  int    // requests that died in transport (informational)
	Rejected   int    // 4xx responses
	Accepted   int    // 2xx responses
	HTTPPanics uint64 // serve.http_panics scraped from /metrics.json
	Alive      bool   // /healthz answered 200 after the sweep
	ScrapeErr  string // failure reading healthz/metrics, if any
}

// Violations counts contract breaches: 5xx responses, handler panics,
// and a dead or unreadable service after the sweep.
func (r *HTTPReport) Violations() int {
	v := r.FiveXX + int(r.HTTPPanics)
	if !r.Alive {
		v++
	}
	return v
}

// Summary renders the human-readable contract report.
func (r *HTTPReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos http: %d hostile requests (seed %d): %d rejected 4xx, %d accepted 2xx, %d transport errors\n",
		len(r.Trials), r.Seed, r.Rejected, r.Accepted, r.Transport)
	byAttack := map[string][2]int{}
	var order []string
	for _, t := range r.Trials {
		c, ok := byAttack[t.Attack]
		if !ok {
			order = append(order, t.Attack)
		}
		c[0]++
		if t.Status >= 400 && t.Status < 500 {
			c[1]++
		}
		byAttack[t.Attack] = c
	}
	for _, a := range order {
		c := byAttack[a]
		fmt.Fprintf(&b, "  %-16s %4d trials, %4d rejected\n", a, c[0], c[1])
	}
	alive := "alive"
	if !r.Alive {
		alive = "DEAD"
	}
	if r.ScrapeErr != "" {
		alive += " (" + r.ScrapeErr + ")"
	}
	fmt.Fprintf(&b, "contract: %d responses >= 500, %d handler panics, service %s\n",
		r.FiveXX, r.HTTPPanics, alive)
	return b.String()
}

// brokenBody is a request body that fails mid-stream — the client-side
// shape of a truncated upload. The transport aborts the request, so the
// server sees an unexpected EOF while reading the body.
type brokenBody struct {
	data []byte
	off  int
}

func (b *brokenBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data)/2 {
		return 0, errors.New("chaos: simulated client disconnect")
	}
	n := copy(p, b.data[b.off:len(b.data)/2])
	b.off += n
	return n, nil
}

// slowBody dribbles the payload a few bytes at a time — a bounded
// slow-loris. A server-side read timeout that cuts it off is a pass;
// only a dead server afterwards is a violation.
type slowBody struct {
	data  []byte
	off   int
	delay time.Duration
}

func (b *slowBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	time.Sleep(b.delay)
	end := b.off + 64
	if end > len(b.data) {
		end = len(b.data)
	}
	n := copy(p, b.data[b.off:end])
	b.off += n
	return n, nil
}

// RunHTTP fires a hostile upload sweep at a running analysis service
// (see `racer serve`): n corrupted log containers cycling the full
// corruption taxonomy, plus truncated uploads that disconnect
// mid-stream and bounded slow-loris uploads. It then checks the service
// contract from the outside: /healthz still answers and the
// serve.http_panics counter on /metrics.json is zero. baseURL is the
// service root, e.g. "http://127.0.0.1:8844". The optional registry
// receives chaos.http.* counters (nil is off, as everywhere).
func RunHTTP(baseURL string, container []byte, n int, seed int64, reg *obs.Registry) *HTTPReport {
	baseURL = strings.TrimRight(baseURL, "/")
	in := NewInjector(seed)
	rep := &HTTPReport{Seed: seed}
	client := &http.Client{Timeout: 30 * time.Second}
	upload := func(attack string, index int, body io.Reader) {
		t := HTTPTrial{Index: index, Attack: attack}
		url := fmt.Sprintf("%s/v1/upload?tenant=chaos&label=chaos-%d.rlog", baseURL, index)
		resp, err := client.Post(url, "application/octet-stream", body)
		if err != nil {
			t.Err = err.Error()
			rep.Transport++
			reg.Counter("chaos.http.transport_errors").Inc()
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			t.Status = resp.StatusCode
			switch {
			case resp.StatusCode >= 500:
				rep.FiveXX++
				reg.Counter("chaos.http.5xx").Inc()
				reg.EmitLabeled("chaos.violation", "http-5xx", uint64(index))
				reg.Logger().Error("chaos contract violation",
					"violation", "http-5xx", "trial", index, "attack", attack, "status", resp.StatusCode)
			case resp.StatusCode >= 400:
				rep.Rejected++
			default:
				rep.Accepted++
			}
		}
		rep.Trials = append(rep.Trials, t)
		reg.Counter("chaos.http.trials").Inc()
	}

	idx := 0
	for i := 0; i < n; i++ {
		data, kind := in.CorruptFile(container, i)
		upload(kind.String(), idx, strings.NewReader(string(data)))
		idx++
	}
	// Truncated uploads: the client vanishes mid-body.
	for i := 0; i < 4; i++ {
		upload("truncated", idx, &brokenBody{data: container})
		idx++
	}
	// Slow-loris: a trickled (corrupt) body, bounded to stay fast.
	loris := container
	if len(loris) > 1024 {
		loris = loris[:1024] // also truncates it, so a patient server still rejects it
	}
	for i := 0; i < 2; i++ {
		upload("slow-loris", idx, &slowBody{data: loris, delay: 20 * time.Millisecond})
		idx++
	}

	rep.Alive, rep.HTTPPanics, rep.ScrapeErr = scrapeService(client, baseURL)
	if !rep.Alive {
		reg.Counter("chaos.http.dead_service").Inc()
		reg.Logger().Error("chaos contract violation", "violation", "dead-service", "err", rep.ScrapeErr)
	}
	if rep.HTTPPanics > 0 {
		reg.Logger().Error("chaos contract violation", "violation", "handler-panics", "count", rep.HTTPPanics)
	}
	return rep
}

// scrapeService checks the daemon from the outside: liveness via
// /healthz and the handler-panic count via /metrics.json.
func scrapeService(client *http.Client, baseURL string) (alive bool, panics uint64, scrapeErr string) {
	resp, err := client.Get(baseURL + "/healthz")
	if err != nil {
		return false, 0, err.Error()
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, 0, fmt.Sprintf("healthz status %d", resp.StatusCode)
	}
	mresp, err := client.Get(baseURL + "/metrics.json")
	if err != nil {
		return true, 0, err.Error()
	}
	defer mresp.Body.Close()
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		return true, 0, "metrics.json: " + err.Error()
	}
	return true, snap.Counters["serve.http_panics"], ""
}
