package core

import (
	"repro/internal/classify"
	"repro/internal/hb"
	"repro/internal/static"
)

// CollectEvidence condenses analyzed executions of one program into the
// dynamic evidence the static cross-validator joins against: every site
// that executed in any run, and every happens-before race with its
// classifier verdict. Results from different seeds of the same program
// merge; a race seen under any seed counts, and a potentially-harmful
// verdict from any seed outranks a benign one (same stickiness the
// classifier's own Merge applies).
func CollectEvidence(results []*Result) static.DynamicEvidence {
	ev := static.DynamicEvidence{
		ObservedSites: map[string]bool{},
		Races:         map[hb.SitePair]string{},
	}
	harmful := classify.PotentiallyHarmful.String()
	record := func(sites hb.SitePair, verdict string) {
		if prev, ok := ev.Races[sites]; !ok || (prev != harmful && verdict == harmful) {
			ev.Races[sites] = verdict
		}
	}
	for _, r := range results {
		if r == nil {
			continue
		}
		if r.Exec != nil {
			for _, region := range r.Exec.Regions {
				for _, acc := range region.Accesses {
					ev.ObservedSites[acc.Site(r.Exec.Prog)] = true
				}
			}
		} else {
			// The online race-free fast path skips the replay; the sites
			// it observed during recording stand in for the replay's.
			for _, site := range r.ObservedSites {
				ev.ObservedSites[site] = true
			}
		}
		if r.Classification != nil {
			for _, rr := range r.Classification.Races {
				record(rr.Sites, rr.Verdict.String())
			}
		}
		if r.Races != nil {
			for _, race := range r.Races.Races {
				record(race.Sites, "unclassified")
			}
		}
	}
	collectPredicted(&ev, results)
	return ev
}

// collectPredicted fills ev.Predicted — the prediction engine's race
// set — from any result that ran the prediction stage. Prediction
// subsumes observation by construction, so the map holds both the
// observed races (with their verdicts) and the predicted-new ones
// (with the second classification pass's verdicts), under the same
// harmful-outranks-benign stickiness as the observed map.
func collectPredicted(ev *static.DynamicEvidence, results []*Result) {
	harmful := classify.PotentiallyHarmful.String()
	record := func(sites hb.SitePair, verdict string) {
		if prev, ok := ev.Predicted[sites]; !ok || (prev != harmful && verdict == harmful) {
			ev.Predicted[sites] = verdict
		}
	}
	for _, r := range results {
		if r == nil || r.Predicted == nil {
			continue
		}
		if ev.Predicted == nil {
			ev.Predicted = map[hb.SitePair]string{}
		}
		if r.Classification != nil {
			for _, rr := range r.Classification.Races {
				record(rr.Sites, rr.Verdict.String())
			}
		}
		if r.Predicted.Classification != nil {
			for _, rr := range r.Predicted.Classification.Races {
				record(rr.Sites, rr.Verdict.String())
			}
		}
		for _, c := range r.Predicted.Report.Candidates {
			record(c.Sites, "unclassified")
		}
	}
}
