// Package core wires the full pipeline of the paper together: record a
// program's execution into a replay log, replay it, find the data races
// with the happens-before detector, and classify every race by replaying
// both orders of each instance in a virtual processor.
//
// This is the programmatic entry point the CLI, the examples, and the
// benchmark harness all build on; the root racereplay package re-exports
// it as the public API.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"repro/internal/classify"
	"repro/internal/hb"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/record"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Result bundles everything one analyzed execution produces.
type Result struct {
	Prog           *isa.Program
	Log            *trace.Log
	Machine        *machine.Result
	Exec           *replay.Execution
	Races          *hb.Report
	Classification *classify.Classification

	// ObservedSites carries the executed data-access sites when the
	// online race-free fast path skipped the replay (Exec == nil), so
	// static cross-validation still sees the run's site coverage. It is
	// nil whenever Exec is populated.
	ObservedSites []string

	// Predicted is the prediction stage's output (nil unless
	// Options.Predict was set): the feasibility report plus the
	// dual-order classification of the predicted-new site pairs.
	Predicted *Predicted
}

// Predicted bundles one execution's prediction stage: the candidate
// report, the predicted-new races (site pairs the observed detector
// never reported), and their dual-order classification — the paper's
// benign/harmful verdict applied to races no single execution exhibited.
type Predicted struct {
	Report         *predict.Report
	NewRaces       *hb.Report
	Classification *classify.Classification
}

// LogStats measures the recorded log's footprint (§5.1 metrics).
func (r *Result) LogStats() trace.SizeStats { return trace.Stats(r.Log) }

// LogDigest is the hex SHA-256 of a log's canonical serialization — the
// content identity audit records attach replay verdicts to. Marshal is
// deterministic, so the digest is a pure function of the recorded
// execution.
func LogDigest(log *trace.Log) string {
	sum := sha256.Sum256(trace.Marshal(log))
	return hex.EncodeToString(sum[:])
}

// DecodeLog decodes and validates one serialized log container — the
// exact decode path analyze-dir applies to a .rlog file, factored out
// for callers that ingest containers from other transports: the
// `racer serve` upload handler and the chaos HTTP sweep. The format is
// sniffed from the magic bytes (v1 and v2 both accepted). Failures are
// the trace package's typed errors, so rejections stay within the
// robustness contract.
func DecodeLog(data []byte) (*trace.Log, error) {
	log, _, err := DecodeLogOpts(data, DecodeOptions{})
	return log, err
}

// DecodeOptions tunes DecodeLogOpts/DecodeLogFrom. The zero value is the
// strict serial decode every pre-v2 caller used.
type DecodeOptions struct {
	// Jobs fans v2 segment decode across workers (<= 1 serial; v1 is
	// inherently serial).
	Jobs int
	// Salvage confines v2 per-segment corruption to the segment's
	// thread where structurally safe: corrupt thread segments are
	// dropped and reported as faults while the healthy remainder
	// analyzes. Damage to the header, index, or meta segment — or a v1
	// log's corruption, which has no segment boundaries to confine it —
	// still condemns the whole log.
	Salvage bool
	// Metrics receives the decode.v2.* counters (nil is off).
	Metrics *obs.Registry
}

// DecodeLogOpts is DecodeLog with worker fan-out, thread salvage, and
// metrics. The fault list is non-empty only for a salvaged v2 log.
func DecodeLogOpts(data []byte, o DecodeOptions) (*trace.Log, []trace.ThreadFault, error) {
	return trace.DecodeOpts(data, trace.V2Options{
		Jobs: o.Jobs, QuarantineThreads: o.Salvage, Metrics: o.Metrics,
	})
}

// DecodeLogFrom decodes a serialized log straight from an io.ReaderAt —
// the spooled-upload path: a v2 container is read header, index, then
// segment by segment, so the full container is never resident; v1 falls
// back to a whole-buffer read.
func DecodeLogFrom(r io.ReaderAt, size int64, o DecodeOptions) (*trace.Log, []trace.ThreadFault, error) {
	return trace.DecodeFrom(r, size, trace.V2Options{
		Jobs: o.Jobs, QuarantineThreads: o.Salvage, Metrics: o.Metrics,
	})
}

// Record runs prog under cfg and returns its replay log (the online half
// of the pipeline; everything else is offline analysis over the log).
func Record(prog *isa.Program, cfg machine.Config) (*trace.Log, *machine.Result, error) {
	return record.Run(prog, cfg)
}

// RecordInstrumented is Record with stage metrics: the run is timed
// under a "record" span and the recorder publishes its record.* counters
// into reg. A nil reg is exactly Record.
func RecordInstrumented(prog *isa.Program, cfg machine.Config, reg *obs.Registry) (*trace.Log, *machine.Result, error) {
	return record.RunInstrumented(prog, cfg, reg)
}

// RecordOnline is Record with the online race detector attached (per
// oc): the returned log carries the raced/race-free verdict as its
// in-memory Online annotation, and the detector's report comes back
// alongside. With oc.Detect false it degrades to Record.
func RecordOnline(prog *isa.Program, cfg machine.Config, oc record.OnlineConfig) (*trace.Log, *machine.Result, *hb.OnlineReport, error) {
	return record.RunOnline(prog, cfg, oc)
}

// RecordOnlineInstrumented is RecordOnline with stage metrics, including
// the detect.online.* family. A nil reg is exactly RecordOnline.
func RecordOnlineInstrumented(prog *isa.Program, cfg machine.Config, oc record.OnlineConfig, reg *obs.Registry) (*trace.Log, *machine.Result, *hb.OnlineReport, error) {
	return record.RunOnlineInstrumented(prog, cfg, oc, reg)
}

// AnalyzeLog runs the offline half over an existing log: replay,
// happens-before detection, and dual-order classification.
func AnalyzeLog(log *trace.Log, opts classify.Options) (*Result, error) {
	return AnalyzeLogInstrumented(log, opts, nil)
}

// AnalyzeLogInstrumented is AnalyzeLog with stage metrics: each offline
// stage runs under its own span ("replay", "detect", "classify") and
// publishes its counters into reg, which is also forwarded to the
// classifier and virtual processor. A nil reg is exactly AnalyzeLog.
func AnalyzeLogInstrumented(log *trace.Log, opts classify.Options, reg *obs.Registry) (*Result, error) {
	// Race-free fast path: when an online detector watched the recording
	// and saw no race, its verdict provably matches the offline detector
	// on this log, so replay+detect+classify would only reconfirm an
	// empty report. The annotation is in-memory only (never decoded from
	// disk) and any raced or stopped run falls through to the full
	// offline pass, which remains the source of truth.
	// Prediction disables the fast path: a race-free *observed*
	// interleaving is exactly where prediction has work to do.
	if log.Online != nil && log.Online.RaceFree && !log.Online.Stopped && !opts.Predict {
		return analyzeRaceFreeFast(log, opts, reg)
	}
	sp := reg.StartSpan("replay")
	exec, err := replay.Run(log, replay.Options{Metrics: reg})
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = reg.StartSpan("detect")
	races := hb.DetectInstrumented(exec, reg)
	sp.End()
	if reg != nil {
		opts.Metrics = reg
	}
	sp = reg.StartSpan("classify")
	cls := classify.Run(exec, races, opts)
	sp.End()
	res := &Result{
		Prog:           log.Prog,
		Log:            log,
		Exec:           exec,
		Races:          races,
		Classification: cls,
	}
	if opts.Predict {
		res.Predicted = runPredict(exec, races, opts, reg)
	}
	return res, nil
}

// runPredict is the prediction stage: propose feasible reorderings over
// the replayed execution, then classify the predicted-new site pairs by
// the same dual-order replay (sharing the caller's memo, metrics, and
// audit envelope). Audit races appended by the second classification
// pass are stamped Predicted, so the provenance trail distinguishes
// verdicts on observed instances from verdicts on proposed ones.
func runPredict(exec *replay.Execution, races *hb.Report, opts classify.Options, reg *obs.Registry) *Predicted {
	sp := reg.StartSpan("predict")
	prep := predict.Run(exec, predict.Options{Window: opts.PredictWindow, Metrics: reg})
	newRaces := prep.NewReport(races)
	sp.End()
	var auditBefore int
	if opts.Audit != nil {
		auditBefore = len(opts.Audit.Races)
	}
	sp = reg.StartSpan("classify-predicted")
	pcls := classify.Run(exec, newRaces, opts)
	sp.End()
	if opts.Audit != nil {
		for i := auditBefore; i < len(opts.Audit.Races); i++ {
			opts.Audit.Races[i].Predicted = true
		}
	}
	reg.Counter("predict.new_races").Add(uint64(len(newRaces.Races)))
	reg.Logger().Debug("prediction classified",
		"scenario", opts.Scenario, "seed", opts.Seed,
		"candidates", len(prep.Candidates), "new_races", len(newRaces.Races))
	return &Predicted{Report: prep, NewRaces: newRaces, Classification: pcls}
}

// analyzeRaceFreeFast produces the Result a full offline pass would
// return for a log the online detector certified race-free: an empty
// race report and an empty classification, with the observed data-access
// sites carried over for static cross-validation. Downstream renderers
// and merges treat it identically to an offline zero-race result.
func analyzeRaceFreeFast(log *trace.Log, opts classify.Options, reg *obs.Registry) (*Result, error) {
	sp := reg.StartSpan("fastpath")
	sites := make([]string, 0, len(log.Online.ObservedPCs))
	for _, pc := range log.Online.ObservedPCs {
		sites = append(sites, log.Prog.SiteOf(pc))
	}
	sp.End()
	reg.Counter("detect.online.fastpath").Inc()
	reg.Logger().Debug("online fast path",
		"scenario", opts.Scenario, "seed", opts.Seed,
		"observed_sites", len(sites))
	return &Result{
		Prog:           log.Prog,
		Log:            log,
		Races:          &hb.Report{},
		Classification: &classify.Classification{},
		ObservedSites:  sites,
	}, nil
}

// Quarantined records one batch item whose analysis failed — the
// degraded-but-labeled half of the pipeline's robustness contract. A
// quarantined item never aborts its batch: the run completes with
// partial results and the per-item error (a *trace.DecodeError,
// *trace.ValidateError, replay error, or recovered *sched.PanicError)
// lands here for the report's quarantine section.
type Quarantined struct {
	Index int    // position in the batch
	Label string // Options.Scenario (or file name) when set
	Err   error
}

func (q Quarantined) String() string {
	if q.Label != "" {
		return fmt.Sprintf("%s: %v", q.Label, q.Err)
	}
	return fmt.Sprintf("item %d: %v", q.Index, q.Err)
}

// AnalyzeLogs runs the offline half over a batch of logs, fanning the
// per-log work across jobs workers (jobs < 1 means GOMAXPROCS). optsFor
// supplies the classify options for the i-th log. Results come back in
// input order and are identical to analyzing each log serially.
//
// The batch never aborts: a log that fails to replay — or whose
// analysis panics — leaves a nil slot in the results and a Quarantined
// entry (ascending by index) describing the failure. len(results) is
// always len(logs).
func AnalyzeLogs(logs []*trace.Log, optsFor func(i int) classify.Options, jobs int) ([]*Result, []Quarantined) {
	return AnalyzeLogsInstrumented(logs, optsFor, jobs, nil)
}

// AnalyzeLogsInstrumented is AnalyzeLogs with stage metrics. Each worker
// publishes spans through a fork of reg; forks are adopted in input
// order after the batch drains, so the merged replay/detect/classify
// ladder is identical at every worker count. The pool additionally
// publishes its sched.* metrics, every recovered panic increments
// sched.panics, and every quarantined item increments
// robust.quarantined. A nil reg is exactly AnalyzeLogs.
func AnalyzeLogsInstrumented(logs []*trace.Log, optsFor func(i int) classify.Options, jobs int, reg *obs.Registry) ([]*Result, []Quarantined) {
	results := make([]*Result, len(logs))
	errs := make([]error, len(logs))
	// One replay cache for the whole batch: fingerprints are content
	// hashes, so instances recurring across executions of the same
	// program (the suite records every scenario under several seeds) hit
	// the shared cache. Callers that set their own Memo — or NoMemo —
	// keep their setting.
	memo := classify.NewMemo()
	batchOpts := func(i int) classify.Options {
		o := optsFor(i)
		if o.Memo == nil && !o.NoMemo {
			o.Memo = memo
		}
		return o
	}
	analyze := func(i int, reg *obs.Registry) {
		errs[i] = sched.Guard(reg, func() (err error) {
			results[i], err = AnalyzeLogInstrumented(logs[i], batchOpts(i), reg)
			return err
		})
	}
	jobs = sched.Normalize(jobs, sched.DefaultJobs())
	if jobs <= 1 || len(logs) < 2 {
		for i := range logs {
			analyze(i, reg)
		}
	} else {
		forks := make([]*obs.Registry, len(logs))
		pool := sched.NewPool(jobs, reg)
		for i := range logs {
			i := i
			forks[i] = reg.Fork()
			// Name the fork's timeline lane after the work item, so the
			// exported trace reads "exec01#1", not an anonymous worker.
			if label := optsFor(i).Scenario; label != "" {
				forks[i].LabelLane(label)
			}
			pool.Submit(func() { analyze(i, forks[i]) })
		}
		pool.Wait()
		for _, f := range forks {
			reg.Adopt(f)
		}
	}
	var quarantined []Quarantined
	for i, err := range errs {
		if err != nil {
			results[i] = nil // a panicked job may have left a partial result
			label := optsFor(i).Scenario
			quarantined = append(quarantined, Quarantined{Index: i, Label: label, Err: err})
			reg.Counter("robust.quarantined").Inc()
			reg.EmitLabeled("quarantine", label, uint64(i))
			reg.Logger().Warn("analysis quarantined",
				"item", i, "scenario", label, "err", err.Error())
		}
	}
	reg.Logger().Info("batch analyzed",
		"logs", len(logs), "jobs", jobs, "quarantined", len(quarantined))
	return results, quarantined
}

// Analyze is the whole pipeline: record prog, then analyze the log.
func Analyze(prog *isa.Program, cfg machine.Config, opts classify.Options) (*Result, error) {
	return AnalyzeInstrumented(prog, cfg, opts, nil)
}

// AnalyzeInstrumented is Analyze with stage metrics threaded through
// every layer of the pipeline. A nil reg is exactly Analyze.
func AnalyzeInstrumented(prog *isa.Program, cfg machine.Config, opts classify.Options, reg *obs.Registry) (*Result, error) {
	log, mres, err := RecordInstrumented(prog, cfg, reg)
	if err != nil {
		return nil, err
	}
	if opts.Seed == 0 {
		opts.Seed = cfg.Seed
	}
	res, err := AnalyzeLogInstrumented(log, opts, reg)
	if err != nil {
		return nil, err
	}
	res.Machine = mres
	return res, nil
}

// AnalyzeOnlineInstrumented is AnalyzeInstrumented with online detection
// during the recording: a race-free online verdict lets the analysis
// half skip replay+detect+classify entirely (the fast path), while a
// raced verdict takes the usual full offline pass.
func AnalyzeOnlineInstrumented(prog *isa.Program, cfg machine.Config, oc record.OnlineConfig, opts classify.Options, reg *obs.Registry) (*Result, error) {
	log, mres, _, err := RecordOnlineInstrumented(prog, cfg, oc, reg)
	if err != nil {
		return nil, err
	}
	if opts.Seed == 0 {
		opts.Seed = cfg.Seed
	}
	res, err := AnalyzeLogInstrumented(log, opts, reg)
	if err != nil {
		return nil, err
	}
	res.Machine = mres
	return res, nil
}
