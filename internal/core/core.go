// Package core wires the full pipeline of the paper together: record a
// program's execution into a replay log, replay it, find the data races
// with the happens-before detector, and classify every race by replaying
// both orders of each instance in a virtual processor.
//
// This is the programmatic entry point the CLI, the examples, and the
// benchmark harness all build on; the root racereplay package re-exports
// it as the public API.
package core

import (
	"repro/internal/classify"
	"repro/internal/hb"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/record"
	"repro/internal/replay"
	"repro/internal/trace"
)

// Result bundles everything one analyzed execution produces.
type Result struct {
	Prog           *isa.Program
	Log            *trace.Log
	Machine        *machine.Result
	Exec           *replay.Execution
	Races          *hb.Report
	Classification *classify.Classification
}

// LogStats measures the recorded log's footprint (§5.1 metrics).
func (r *Result) LogStats() trace.SizeStats { return trace.Stats(r.Log) }

// Record runs prog under cfg and returns its replay log (the online half
// of the pipeline; everything else is offline analysis over the log).
func Record(prog *isa.Program, cfg machine.Config) (*trace.Log, *machine.Result, error) {
	return record.Run(prog, cfg)
}

// AnalyzeLog runs the offline half over an existing log: replay,
// happens-before detection, and dual-order classification.
func AnalyzeLog(log *trace.Log, opts classify.Options) (*Result, error) {
	exec, err := replay.Run(log, replay.Options{})
	if err != nil {
		return nil, err
	}
	races := hb.Detect(exec)
	return &Result{
		Prog:           log.Prog,
		Log:            log,
		Exec:           exec,
		Races:          races,
		Classification: classify.Run(exec, races, opts),
	}, nil
}

// Analyze is the whole pipeline: record prog, then analyze the log.
func Analyze(prog *isa.Program, cfg machine.Config, opts classify.Options) (*Result, error) {
	log, mres, err := Record(prog, cfg)
	if err != nil {
		return nil, err
	}
	if opts.Seed == 0 {
		opts.Seed = cfg.Seed
	}
	res, err := AnalyzeLog(log, opts)
	if err != nil {
		return nil, err
	}
	res.Machine = mres
	return res, nil
}
