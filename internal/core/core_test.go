package core

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"

	"testing"

	"repro/internal/asm"
	"repro/internal/classify"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/trace"
)

const racySrc = `
.entry main
.word n 0
worker:
  ldi r2, 10
wloop:
  ldi r4, n
  ld r5, [r4+0]
  addi r5, r5, 1
  st [r4+0], r5
  sys sysnop
  addi r2, r2, -1
  bne r2, r0, wloop
  ldi r1, 0
  sys exit
main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r6, r1
  ldi r1, worker
  sys spawn
  mov r7, r1
  mov r1, r6
  sys join
  mov r1, r7
  sys join
  halt
`

func TestAnalyzeEndToEnd(t *testing.T) {
	prog, err := asm.Assemble("core", racySrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(prog, machine.Config{Seed: 4}, classify.Options{Scenario: "core"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine == nil || res.Log == nil || res.Exec == nil || res.Races == nil || res.Classification == nil {
		t.Fatal("incomplete result")
	}
	if res.Log.Instructions() == 0 {
		t.Error("empty log")
	}
	if res.LogStats().RawBytes == 0 {
		t.Error("empty stats")
	}
	// Classification covers exactly the detected races.
	if len(res.Classification.Races) != len(res.Races.Races) {
		t.Errorf("classified %d of %d races", len(res.Classification.Races), len(res.Races.Races))
	}
	// Seed defaulting: opts.Seed inherits cfg.Seed.
	for _, r := range res.Classification.Races {
		for _, s := range r.Samples {
			if s.Seed != 4 {
				t.Errorf("sample seed = %d, want 4", s.Seed)
			}
		}
	}
}

func TestAnalyzeLogMatchesAnalyze(t *testing.T) {
	prog, err := asm.Assemble("core", racySrc)
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := Record(prog, machine.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip the log through serialization before the offline half.
	log2, err := trace.Unmarshal(trace.Marshal(log))
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeLog(log2, classify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(prog, machine.Config{Seed: 9}, classify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Races.Races) != len(b.Races.Races) {
		t.Errorf("race counts differ: %d vs %d", len(a.Races.Races), len(b.Races.Races))
	}
	if a.Classification.TotalInstances() != b.Classification.TotalInstances() {
		t.Errorf("instance counts differ: %d vs %d",
			a.Classification.TotalInstances(), b.Classification.TotalInstances())
	}
}

func TestAnalyzeRejectsBadProgram(t *testing.T) {
	prog, err := asm.Assemble("empty", "main:\n  halt\n")
	if err != nil {
		t.Fatal(err)
	}
	prog.Entry = 99 // corrupt after assembly
	if _, err := Analyze(prog, machine.Config{Seed: 1}, classify.Options{}); err == nil {
		t.Error("corrupt program accepted")
	}
}

// TestAnalyzeLogsMatchesSerial: the batch API returns, for every log,
// exactly what AnalyzeLog returns, in input order, at any worker count.
func TestAnalyzeLogsMatchesSerial(t *testing.T) {
	prog, err := asm.Assemble("core", racySrc)
	if err != nil {
		t.Fatal(err)
	}
	var logs []*trace.Log
	for seed := int64(1); seed <= 6; seed++ {
		log, _, err := Record(prog, machine.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		logs = append(logs, log)
	}
	optsFor := func(i int) classify.Options {
		return classify.Options{Scenario: "core", Seed: int64(i + 1)}
	}
	want := make([]*Result, len(logs))
	for i, log := range logs {
		if want[i], err = AnalyzeLog(log, optsFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, jobs := range []int{1, 4, 16} {
		got, quarantined := AnalyzeLogs(logs, optsFor, jobs)
		if len(quarantined) != 0 {
			t.Fatalf("jobs=%d: healthy batch quarantined %v", jobs, quarantined)
		}
		if len(got) != len(want) {
			t.Fatalf("jobs=%d: %d results, want %d", jobs, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i].Classification, want[i].Classification) {
				t.Errorf("jobs=%d: log %d classification differs from serial", jobs, i)
			}
			if len(got[i].Races.Races) != len(want[i].Races.Races) {
				t.Errorf("jobs=%d: log %d race count differs", jobs, i)
			}
		}
	}
}

// TestAnalyzeLogsQuarantinesBadItems: corrupt logs mid-batch do not
// abort it — the healthy log is still analyzed and each bad log lands
// in the quarantine list, labeled and in index order, at any worker
// count.
func TestAnalyzeLogsQuarantinesBadItems(t *testing.T) {
	prog, err := asm.Assemble("core", racySrc)
	if err != nil {
		t.Fatal(err)
	}
	good, _, err := Record(prog, machine.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a copy of the log: stripping the logged load values makes
	// every shared-memory read unresolvable, which replay must reject.
	bad := *good
	bad.Threads = make([]*trace.ThreadLog, len(good.Threads))
	for i, tl := range good.Threads {
		cp := *tl
		cp.Loads = nil
		bad.Threads[i] = &cp
	}
	logs := []*trace.Log{good, &bad, &bad}
	for _, jobs := range []int{1, 4} {
		reg := obs.NewRegistry()
		results, quarantined := AnalyzeLogsInstrumented(logs, func(i int) classify.Options {
			return classify.Options{Scenario: fmt.Sprintf("log%d", i)}
		}, jobs, reg)
		if len(results) != 3 || results[0] == nil {
			t.Fatalf("jobs=%d: healthy log not analyzed (results %v)", jobs, results)
		}
		if results[1] != nil || results[2] != nil {
			t.Errorf("jobs=%d: corrupt logs produced results", jobs)
		}
		if len(quarantined) != 2 {
			t.Fatalf("jobs=%d: quarantined %d items, want 2", jobs, len(quarantined))
		}
		if quarantined[0].Index != 1 || quarantined[0].Label != "log1" || quarantined[0].Err == nil {
			t.Errorf("jobs=%d: first quarantined item = %+v", jobs, quarantined[0])
		}
		if !strings.Contains(quarantined[0].String(), "log1") {
			t.Errorf("jobs=%d: quarantine line %q not labeled", jobs, quarantined[0])
		}
		if got := reg.Counter("robust.quarantined").Value(); got != 2 {
			t.Errorf("jobs=%d: robust.quarantined = %d, want 2", jobs, got)
		}
	}
}

// TestAnalyzeLogsIsolatesPanics: a log whose analysis panics outright
// (nil program) quarantines as a *sched.PanicError instead of crashing
// the batch.
func TestAnalyzeLogsIsolatesPanics(t *testing.T) {
	prog, err := asm.Assemble("core", racySrc)
	if err != nil {
		t.Fatal(err)
	}
	good, _, err := Record(prog, machine.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad := *good
	bad.Prog = nil // replay dereferences the program: guaranteed panic or error
	for _, jobs := range []int{1, 4} {
		results, quarantined := AnalyzeLogs([]*trace.Log{&bad, good}, func(i int) classify.Options {
			return classify.Options{Scenario: fmt.Sprintf("log%d", i)}
		}, jobs)
		if results[1] == nil {
			t.Fatalf("jobs=%d: healthy log lost to the panicking one", jobs)
		}
		if len(quarantined) != 1 || quarantined[0].Index != 0 {
			t.Fatalf("jobs=%d: quarantine = %v, want the panicking log only", jobs, quarantined)
		}
	}
}

// TestDecodeLogBothFormats: DecodeLog and DecodeLogFrom sniff either
// container format and return the same log the v1 path does.
func TestDecodeLogBothFormats(t *testing.T) {
	prog, err := asm.Assemble("core", racySrc)
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := Record(prog, machine.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := trace.Marshal(log)
	v1 := trace.Compress(want)
	v2 := trace.MarshalV2(log)
	for name, data := range map[string][]byte{"v1": v1, "v2": v2, "raw": want} {
		got, err := DecodeLog(data)
		if err != nil {
			t.Fatalf("%s: DecodeLog: %v", name, err)
		}
		if !reflect.DeepEqual(trace.Marshal(got), want) {
			t.Errorf("%s: DecodeLog round-trip diverged", name)
		}
		got2, faults, err := DecodeLogFrom(bytes.NewReader(data), int64(len(data)),
			DecodeOptions{Jobs: 2, Salvage: true, Metrics: obs.NewRegistry()})
		if err != nil {
			t.Fatalf("%s: DecodeLogFrom: %v", name, err)
		}
		if len(faults) != 0 {
			t.Errorf("%s: DecodeLogFrom faults = %v on an intact log", name, faults)
		}
		if !reflect.DeepEqual(trace.Marshal(got2), want) {
			t.Errorf("%s: DecodeLogFrom round-trip diverged", name)
		}
	}
	if _, err := DecodeLog([]byte("not a log at all")); err == nil {
		t.Error("garbage accepted")
	}
}
