// Timeline: the flight-recorder half of the observability layer.
//
// Counters and spans (examples/metrics) aggregate; the timeline keeps
// the individual events — which worker replayed which scenario, where
// the memoized classifier hit its cache, when an input was quarantined
// — in per-worker ring buffers with bounded memory, merged at snapshot
// time into one deterministic sequence. The export is Chrome
// trace_event JSON: drop racer-trace.json onto https://ui.perfetto.dev
// (or chrome://tracing) and every analysis worker is a swim lane with
// its pipeline stages as slices and the memo/quarantine events as
// instant markers.
package main

import (
	"fmt"
	"log"
	"os"

	racereplay "repro"
)

func main() {
	// EnableTimeline attaches the flight recorder; 0 means the default
	// ring capacity (4096 events per lane, ~64 B each). Without this
	// call — or with a nil registry — every Emit is a no-op and the
	// pipeline's hot paths stay allocation free.
	reg := racereplay.NewMetrics()
	reg.EnableTimeline(0)

	run, err := racereplay.RunSuiteOpts(racereplay.SuiteOptions{
		Seeds: 2, Jobs: 4, Registry: reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	benign, harmful := run.Merged.CountByVerdict()
	fmt.Printf("suite: %d scenarios, %d unique races (%d potentially benign, %d potentially harmful)\n\n",
		len(run.Scenarios), len(run.Merged.Races), benign, harmful)

	// The snapshot merges every lane by (timestamp, lane, sequence) — a
	// total order, so two snapshots of the same run agree exactly, no
	// matter how many workers emitted concurrently.
	snap := reg.Timeline().Snapshot()
	fmt.Printf("timeline: %d lanes, %d events (%d dropped to ring wraparound)\n",
		len(snap.Lanes), len(snap.Events), snap.Dropped())
	for _, lane := range snap.Lanes {
		fmt.Printf("  lane %d %-28q %4d events\n", lane.ID, lane.Label, lane.Events)
	}

	// A few raw events: the worker lanes interleave recording, replay,
	// detection, and classification per scenario.
	fmt.Println("\nfirst events of the merged sequence:")
	kinds := map[racereplay.TimelineEventKind]string{
		racereplay.EvInstant: "instant", racereplay.EvBegin: "begin", racereplay.EvEnd: "end",
	}
	for _, ev := range snap.Events[:12] {
		fmt.Printf("  %8.3fms lane %d %-7s %s", float64(ev.TS)/1e6, ev.Lane, kinds[ev.Kind], ev.Name)
		if ev.Label != "" {
			fmt.Printf(" (%s)", ev.Label)
		}
		fmt.Println()
	}

	// The same snapshot as a Perfetto-loadable trace. `racer suite
	// -trace-out` and the /trace endpoint of `racer profile` write this
	// exact format.
	f, err := os.Create("racer-trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := reg.Timeline().WriteTrace(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote racer-trace.json — open it at https://ui.perfetto.dev")
}
