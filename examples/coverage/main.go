// Coverage: the dynamic-analysis trade-off the paper lives with (§1, §2.1)
// — a race is only found if the recorded execution exposes it, and a race
// is only *caught as harmful* if some recorded instance exposes the
// difference. This example runs the same buggy program under three
// scheduler policies and an increasing number of recorded runs, showing
// how coverage accumulates:
//
//   - round-robin scheduling is too regular to expose much,
//   - random stress exposure grows with the number of runs,
//   - PCT (priority scheduling with demotion points) concentrates on
//     ordering edges.
package main

import (
	"fmt"
	"log"

	racereplay "repro"
	"repro/internal/machine"
)

// A program with two bugs that need specific interleavings: a lost update
// on `total` and a torn check on `limit`.
const src = `
.entry main
.word total 0
.word limit 10

worker:
  ldi r5, 4
wloop:
  ldi r2, total
tld:
  ld r3, [r2+0]
  addi r3, r3, 1
tst:
  st [r2+0], r3
  sys sysnop
  addi r5, r5, -1
  bne r5, r0, wloop
  ldi r1, 0
  sys exit

tuner:
  ldi r2, limit
  ldi r3, 20
lst:
  st [r2+0], r3
  ldi r1, 0
  sys exit

checker:
  ldi r2, limit
lld:
  ld r7, [r2+0]
  sys sysnop
  ldi r1, 0
  sys exit

main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, worker
  sys spawn
  mov r9, r1
  ldi r1, tuner
  ldi r2, 0
  sys spawn
  mov r10, r1
  ldi r1, checker
  ldi r2, 0
  sys spawn
  mov r11, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  mov r1, r10
  sys join
  mov r1, r11
  sys join
  halt
`

func main() {
	prog, err := racereplay.Assemble("coverage", src)
	if err != nil {
		log.Fatal(err)
	}

	policies := []machine.SchedPolicy{
		machine.PolicyRoundRobin, machine.PolicyRandom, machine.PolicyPCT,
	}
	fmt.Println("cumulative unique races / exposing instances, by recorded runs:")
	fmt.Printf("%-14s %8s %8s %8s\n", "policy", "1 run", "4 runs", "16 runs")
	for _, policy := range policies {
		var cells []string
		var parts []*racereplay.Classification
		for _, runs := range []int{1, 4, 16} {
			parts = parts[:0]
			for seed := int64(1); seed <= int64(runs); seed++ {
				cfg := racereplay.Config{Seed: seed, Policy: policy}
				res, err := racereplay.Analyze(prog, cfg, racereplay.Options{})
				if err != nil {
					log.Fatal(err)
				}
				parts = append(parts, res.Classification)
			}
			merged := racereplay.MergeClassifications(parts...)
			exposing := 0
			for _, r := range merged.Races {
				exposing += r.Exposing()
			}
			cells = append(cells, fmt.Sprintf("%d/%d", len(merged.Races), exposing))
		}
		fmt.Printf("%-14s %8s %8s %8s\n", policy, cells[0], cells[1], cells[2])
	}
	fmt.Println("\nmore recorded runs -> more races observed and more instances that")
	fmt.Println("expose the harmful ones; exactly the paper's coverage/accuracy trade-off.")
}
