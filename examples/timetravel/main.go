// Timetravel: reverse execution over a replay log — the iDNA facility the
// paper couples with its race reports ("time travel debugging", §1).
//
// A replay log pins down the whole execution, so "stepping backwards" is
// just replaying a shorter prefix of the sequencing-region schedule. This
// example records a producer/consumer run, then walks the shared
// counter's value backwards in time to find the region that first made it
// non-zero — the kind of root-cause search a developer does from a race
// report.
package main

import (
	"fmt"
	"log"

	racereplay "repro"
)

const src = `
.entry main
.word counter 0

producer:
  ldi r5, 6
ploop:
  ldi r2, counter
  ld r3, [r2+0]
  addi r3, r3, 10
  st [r2+0], r3
  sys sysnop           ; a sequencer per step: visible time-travel points
  addi r5, r5, -1
  bne r5, r0, ploop
  ldi r1, 0
  sys exit

main:
  ldi r1, producer
  ldi r2, 0
  sys spawn
  sys join
  ldi r2, counter
  ld r1, [r2+0]
  sys print
  halt
`

func main() {
	prog, err := racereplay.Assemble("timetravel", src)
	if err != nil {
		log.Fatal(err)
	}
	rlog, err := racereplay.Record(prog, racereplay.Config{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	full, err := racereplay.Replay(rlog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d instructions in %d sequencing regions; final output %v\n",
		rlog.Instructions(), len(full.Regions), full.Thread(0).Output)

	// Locate the counter's address from the program's data segment.
	var counterAddr uint64
	for a := range prog.Data {
		counterAddr = a
	}

	// Walk backwards: replay ever-shorter prefixes and watch the counter.
	fmt.Println("\ntime travel (region prefix -> counter value):")
	last := ^uint64(0)
	for n := len(full.Regions); n >= 1; n-- {
		exec, err := racereplay.ReplayTo(rlog, n)
		if err != nil {
			log.Fatal(err)
		}
		v := exec.FinalMem[counterAddr]
		if v != last {
			fmt.Printf("  after %2d regions: counter = %d\n", n, v)
			last = v
		}
		if v == 0 {
			fmt.Printf("\nroot cause window: region %d is the first that writes the counter\n", n+1)
			break
		}
	}
}
