// Refcount: a faithful walk-through of the paper's Figure 2 — the
// reference-counting bug that motivated the whole system.
//
//	foo->refCnt--;
//	if (foo->refCnt == 0)
//	    free(foo);
//
// Two threads run this without synchronization. Most interleavings are
// lucky; a few double-free or use freed memory. This example records one
// execution, shows the races the happens-before detector finds, and then
// prints what happened when each racing instance was replayed in both
// orders — including the reproduction coordinates a developer would use
// to replay the failing order under a debugger.
package main

import (
	"fmt"
	"log"

	racereplay "repro"
)

const src = `
.entry main
.word foo 0

worker:
  ldi r2, foo
  ld r4, [r2+0]       ; r4 = the shared object
rc_load:
  ld r5, [r4+0]       ; load refCnt
  addi r5, r5, -1
rc_store:
  st [r4+0], r5       ; store refCnt-1  (not atomic with the load!)
rc_check:
  ld r6, [r4+0]       ; re-read, as in Figure 2
  bne r6, r0, done
  mov r1, r4
  sys free            ; free(foo) when the count hits zero
done:
  ldi r1, 0
  sys exit

main:
  ldi r1, 1
  sys alloc           ; the object: one word holding the refcount
  mov r4, r1
  ldi r3, 2
  st [r4+0], r3       ; refCnt = 2 (one reference per thread)
  ldi r2, foo
  st [r2+0], r4
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, worker
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  halt
`

func main() {
	// Scan a few interleavings, exactly like running several test
	// scenarios: the more instances observed, the more likely one exposes
	// the bug (§5.3 of the paper).
	exposed := false
	for seed := int64(1); seed <= 12; seed++ {
		res, err := racereplay.AnalyzeSource("refcount", src, seed)
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Classification.Races) == 0 {
			continue
		}
		fmt.Printf("=== seed %d: %d races, %d instances\n",
			seed, len(res.Classification.Races), res.Classification.TotalInstances())
		for _, race := range res.Classification.Races {
			fmt.Printf("  %-50s %v  (nsc %d / sc %d / rf %d)\n",
				race.Sites, race.Verdict, race.NSC, race.SC, race.RF)
			if race.Verdict != racereplay.PotentiallyHarmful {
				continue
			}
			exposed = true
			for _, s := range race.Samples {
				if s.FailReason == "" && len(s.Diffs) == 0 {
					continue
				}
				fmt.Printf("    instance at addr 0x%x (threads %d and %d):\n", s.Addr, s.TIDA, s.TIDB)
				if s.FailReason != "" {
					fmt.Printf("      replay failure: %s\n", s.FailReason)
					fmt.Println("      (the re-ordered thread headed into the free path —")
					fmt.Println("       the paper's replay-failure signal for a harmful race)")
				}
				for _, d := range s.Diffs {
					fmt.Printf("      live-out difference: %s\n", d)
				}
				fmt.Printf("      reproduce both orders: region pair (%d, %d), instruction indices (%d, %d)\n",
					s.RegionA, s.RegionB, s.IdxA, s.IdxB)
			}
		}
		if exposed {
			break
		}
	}
	if !exposed {
		fmt.Println("no harmful instance exposed on these seeds; try more scenarios")
	} else {
		fmt.Println("\nverdict: the refcount race is potentially harmful — exactly Figure 2.")
	}
}
