// Statscounter: the paper's "approximate computation" misclassification
// and the triage workflow that handles it (§1, §5.2.4).
//
// Developers left a statistics counter unsynchronized on purpose — a
// tolerated, intentional race. The classifier cannot know the intent: the
// two orders really do produce different state, so the race is reported
// potentially harmful. A developer triages it once, marks it benign in
// the race database, and every future analysis suppresses it.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	racereplay "repro"
)

const src = `
.entry main
.word hits 0

; Two request handlers bump a hit counter without a lock: cheaper than
; synchronizing, and "about right" is good enough for a dashboard.
handler:
  ldi r5, 10
  mov r6, r1
hloop:
  ldi r2, hits
  ld r3, [r2+0]
  addi r3, r3, 1
hit_store:
  st [r2+0], r3
  sys sysnop
  addi r5, r5, -1
  bne r5, r0, hloop
  ldi r1, 0
  sys exit

main:
  ldi r1, handler
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, handler
  ldi r2, 1
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  halt
`

func main() {
	dbPath := filepath.Join(os.TempDir(), "statscounter-races.json")
	defer os.Remove(dbPath)

	// First analysis: no database yet. The intentional race is reported
	// potentially harmful — a false alarm that costs developer time.
	res, err := racereplay.AnalyzeSource("stats", src, 3)
	if err != nil {
		log.Fatal(err)
	}
	benign, harmful := res.Classification.CountByVerdict()
	fmt.Printf("first analysis:  %d potentially benign, %d potentially harmful\n", benign, harmful)
	for _, race := range res.Classification.Races {
		if race.Verdict == racereplay.PotentiallyHarmful {
			fmt.Printf("  reported: %s (%d state-change instances — a real lost update,\n"+
				"            but the developers tolerate it for performance)\n", race.Sites, race.SC)
		}
	}

	// The developer triages the report, recognizes the intentional
	// approximate counter, and records the verdict.
	db := racereplay.NewDB()
	for _, race := range res.Classification.Races {
		if race.Verdict == racereplay.PotentiallyHarmful {
			db.MarkBenign(race.Sites, "intentional: approximate hit counter, sync too expensive")
		}
	}
	if err := db.Save(dbPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntriage: marked %d race(s) benign in %s\n", len(db.Marks()), dbPath)

	// Every later analysis loads the database; the tolerated race no
	// longer consumes triage time.
	db2, err := racereplay.LoadDB(dbPath)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := racereplay.Assemble("stats", src)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := racereplay.Analyze(prog, racereplay.Config{Seed: 4}, racereplay.Options{DB: db2})
	if err != nil {
		log.Fatal(err)
	}
	benign2, harmful2 := res2.Classification.CountByVerdict()
	fmt.Printf("second analysis: %d potentially benign, %d reported for triage (suppressed the rest)\n",
		benign2, harmful2)
	for _, race := range res2.Classification.Races {
		if race.Suppressed {
			fmt.Printf("  suppressed: %s\n", race.Sites)
		}
	}
}
