// Quickstart: record a small racy program, find its data races, and let
// the replay-based classifier sort them into potentially benign and
// potentially harmful.
//
// The program has two races: a benign one (both threads store the same
// constant into `cache`) and a harmful one (a monitor reads a `total`
// that an updater modifies non-atomically, and acts on the value).
package main

import (
	"fmt"
	"log"

	racereplay "repro"
)

const src = `
.entry main
.word cache 7
.word total 0

; Worker: refreshes the cache with the (identical) recomputed value, then
; bumps the running total non-atomically.
worker:
  ldi r5, 8
wloop:
  ldi r2, cache
  ldi r3, 7
cache_store:
  st [r2+0], r3        ; redundant write: benign race
  ldi r2, total
total_load:
  ld r3, [r2+0]
  addi r3, r3, 5
total_store:
  st [r2+0], r3        ; lost-update race on total
  sys sysnop
  addi r5, r5, -1
  bne r5, r0, wloop
  ldi r1, 0
  sys exit

; Monitor: samples the running total; the sampled value stays live.
monitor:
  ldi r5, 8
mloop:
  ldi r2, total
total_read:
  ld r7, [r2+0]        ; races with total_store, and the value matters
  sys sysnop
  addi r5, r5, -1
  bne r5, r0, mloop
  ldi r1, 0
  sys exit

main:
  ldi r1, worker
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, worker
  sys spawn
  mov r9, r1
  ldi r1, monitor
  ldi r2, 0
  sys spawn
  mov r10, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  mov r1, r10
  sys join
  halt
`

func main() {
	// One call runs the whole pipeline: record the execution into a
	// replay log, replay it, detect races with the happens-before
	// detector, and classify each race by replaying both orders of every
	// instance.
	res, err := racereplay.AnalyzeSource("quickstart", src, 5)
	if err != nil {
		log.Fatal(err)
	}

	stats := res.LogStats()
	fmt.Printf("recorded %d instructions (%.2f bits/instruction of log)\n",
		stats.Instructions, stats.RawBitsPerInstr())
	fmt.Printf("happens-before detector found %d unique races (%d instances)\n\n",
		len(res.Races.Races), res.Races.TotalInstances)

	for _, race := range res.Classification.Races {
		fmt.Printf("%-55s -> %v\n", race.Sites, race.Verdict)
		fmt.Printf("   instances: %d no-state-change, %d state-change, %d replay-failure\n",
			race.NSC, race.SC, race.RF)
	}

	benign, harmful := res.Classification.CountByVerdict()
	fmt.Printf("\n%d potentially benign (can be ignored), %d potentially harmful (triage these)\n",
		benign, harmful)
}
