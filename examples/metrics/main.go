// Metrics: the pipeline-wide observability layer and the §5.1 overhead
// ladder it reproduces.
//
// Every stage of the pipeline — recording, replay, race detection, and
// dual-order classification — publishes counters and runs under a timing
// span when handed a metrics registry. This example runs the built-in
// suite instrumented, prints the per-stage overhead ladder the paper
// reports in §5.1 (native < record < replay < happens-before <
// classification), and shows the raw snapshot renderings a dashboard or
// Prometheus scraper would consume.
package main

import (
	"fmt"
	"log"
	"strings"

	racereplay "repro"
)

func main() {
	// One registry observes the whole run. Passing nil instead turns
	// every probe into a no-op — instrumentation costs nothing when off.
	reg := racereplay.NewMetrics()
	run, err := racereplay.RunSuiteInstrumented(nil, reg)
	if err != nil {
		log.Fatal(err)
	}
	snap := reg.Snapshot()

	benign, harmful := run.Merged.CountByVerdict()
	fmt.Printf("suite: %d scenarios, %d unique races (%d potentially benign, %d potentially harmful)\n\n",
		len(run.Scenarios), len(run.Merged.Races), benign, harmful)

	// The ladder is computed from the accumulated stage spans — the same
	// numbers `paperbench -perf-report` and `racer suite -metrics` show.
	fmt.Print(racereplay.OverheadLadder(snap))

	// A few of the counters each stage published along the way.
	fmt.Println("\nselected stage counters:")
	for _, name := range []string{
		"record.instructions",
		"record.loads_total",
		"record.loads_logged",
		"replay.regions",
		"replay.loads_injected",
		"detect.region_pairs_examined",
		"detect.region_pairs_conflicting",
		"classify.instances_total",
		"report.unique_races",
	} {
		fmt.Printf("  %-34s %d\n", name, snap.Counters[name])
	}
	if r, ok := snap.Gauges["record.load_log_ratio"]; ok {
		fmt.Printf("  %-34s %.4f (the predictability rule: fraction of loads logged)\n",
			"record.load_log_ratio", r)
	}

	// The same snapshot renders for machines: the first lines of the
	// Prometheus exposition a `racer profile` server would serve.
	fmt.Println("\nprometheus exposition (first lines):")
	lines := strings.SplitN(snap.Prometheus(), "\n", 7)
	for _, line := range lines[:6] {
		fmt.Println("  " + line)
	}
}
