// Locksetcompare: three detectors side by side — the static lint pass,
// the Eraser-style lockset baseline, and the happens-before detector
// with replay classification (§2.2.2 of the paper).
//
// The first program is perfectly synchronized — the parent initializes
// shared data before spawning, the child updates it, and the parent
// reads it after join; a second pair of threads shares a counter under a
// lock. The happens-before detector is silent (there is no race); the
// lockset discipline checker still warns about the fork/join sharing
// because no lock protects it — the classic lockset false positive the
// paper contrasts against.
//
// The closing three-way table reruns the comparison per scenario,
// adding two genuinely racy programs, so the blind spots line up in one
// view: lockset over-reports disciplined fork/join sharing, the static
// lint keeps ahead-of-execution candidates that only replay can
// arbitrate, and HB+replay delivers the per-race verdict.
package main

import (
	"fmt"
	"log"

	racereplay "repro"
)

const src = `
.entry main
.word shared 0
.word mu 0
.word counted 0

; Child owns 'shared' between spawn and join.
child:
  ldi r2, shared
  ld r3, [r2+0]
  muli r3, r3, 3
  st [r2+0], r3
  ldi r1, 0
  sys exit

; Two counters share 'counted' under a consistent lock.
counterw:
  ldi r5, 12
cloop:
  ldi r3, mu
  lock [r3+0]
  ldi r4, counted
  ld r6, [r4+0]
  addi r6, r6, 1
  st [r4+0], r6
  unlock [r3+0]
  addi r5, r5, -1
  bne r5, r0, cloop
  ldi r1, 0
  sys exit

main:
  ldi r2, shared
  ldi r3, 14
  st [r2+0], r3       ; init before spawn: ordered
  ldi r1, child
  ldi r2, 0
  sys spawn
  sys join            ; child's writes ordered before the read below
  ldi r2, shared
  ld r4, [r2+0]
  mov r1, r4
  sys print           ; 42
  ldi r1, counterw
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, counterw
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  ldi r2, counted
  ld r1, [r2+0]
  sys print           ; 24
  halt
`

// An unsynchronized shared counter: a real race the lockset checker and
// the static lint both flag, and that replay classifies.
const racySrc = `
.entry main
.word hits 0

handler:
  ldi r5, 6
hloop:
  ldi r2, hits
  ld r3, [r2+0]
  addi r3, r3, 1
  st [r2+0], r3
  sys sysnop
  addi r5, r5, -1
  bne r5, r0, hloop
  ldi r1, 0
  sys exit

main:
  ldi r1, handler
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, handler
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  halt
`

// Half-disciplined: one thread updates under the lock, the other
// forgets it — the textbook case where all three detectors agree.
const mixedSrc = `
.entry main
.word mu 0
.word total 0

locked:
  ldi r5, 4
lloop:
  ldi r3, mu
  lock [r3+0]
  ldi r2, total
  ld r4, [r2+0]
  addi r4, r4, 2
  st [r2+0], r4
  unlock [r3+0]
  addi r5, r5, -1
  bne r5, r0, lloop
  ldi r1, 0
  sys exit

sloppy:
  ldi r5, 4
sloop:
  ldi r2, total
  ld r4, [r2+0]
  addi r4, r4, 2
  st [r2+0], r4
  sys sysnop
  addi r5, r5, -1
  bne r5, r0, sloop
  ldi r1, 0
  sys exit

main:
  ldi r1, locked
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, sloppy
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  halt
`

func main() {
	prog, err := racereplay.Assemble("lockset-demo", src)
	if err != nil {
		log.Fatal(err)
	}
	rlog, err := racereplay.Record(prog, racereplay.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	exec, err := racereplay.Replay(rlog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %v\n\n", exec.Thread(0).Output)

	hbRaces := racereplay.DetectRaces(exec)
	fmt.Printf("happens-before detector: %d races", len(hbRaces.Races))
	if len(hbRaces.Races) == 0 {
		fmt.Println("  (correct: every access is ordered by spawn/join or the lock)")
	} else {
		fmt.Println()
		for _, r := range hbRaces.Races {
			fmt.Printf("  %s\n", r.Sites)
		}
	}

	ls := racereplay.DetectRacesLockset(exec)
	fmt.Printf("\nlockset (Eraser) baseline: %d warnings over %d shared addresses\n",
		len(ls.Warnings), ls.Checked)
	for _, w := range ls.Warnings {
		fmt.Printf("  addr 0x%x at %s (earlier access: %s)\n", w.Addr, w.Site, w.OtherSite)
	}
	if len(ls.Warnings) > 0 {
		fmt.Println("\nthe warnings are false positives: fork/join ordering is correct")
		fmt.Println("synchronization, but it is invisible to a locking-discipline check —")
		fmt.Println("which is why the paper builds on happens-before (§2.2.2).")
	}

	// §2.2.2 also claims the replay analysis can clean up a lockset
	// detector's output directly. Run the triage:
	fmt.Println("\nreplay triage of the lockset warnings:")
	for _, tr := range racereplay.TriageLockset(exec, ls, racereplay.Options{}) {
		fmt.Printf("  addr 0x%x: %v (%d ordered pairs, %d racy instances)\n",
			tr.Warning.Addr, tr.Verdict, tr.OrderedPairs, tr.RacyInstances)
	}
	fmt.Println("every warning is dismissed: the conflicting accesses are all ordered")
	fmt.Println("by sequencers, so there is no race at all — exactly the filtering the")
	fmt.Println("paper promises for lockset-based reports.")

	// Three-way comparison: the same pipeline over three scenarios, with
	// the ahead-of-execution lint joined in.
	fmt.Println("\nthree-way comparison (static lint / lockset / HB+replay):")
	fmt.Println("  scenario        static-cand  lockset-warn  hb-races  benign  harmful")
	scenarios := []struct {
		name string
		src  string
	}{
		{"fork-join+lock", src},
		{"racy-counter", racySrc},
		{"mixed-lock", mixedSrc},
	}
	for _, sc := range scenarios {
		p, err := racereplay.Assemble(sc.name, sc.src)
		if err != nil {
			log.Fatal(err)
		}
		lint := racereplay.AnalyzeStatic(p)
		res, err := racereplay.Analyze(p, racereplay.Config{Seed: 7}, racereplay.Options{})
		if err != nil {
			log.Fatal(err)
		}
		warns := racereplay.DetectRacesLockset(res.Exec)
		benign, harmful := res.Classification.CountByVerdict()
		fmt.Printf("  %-14s  %11d  %12d  %8d  %6d  %7d\n",
			sc.name, len(lint.Candidates), len(warns.Warnings),
			len(res.Races.Races), benign, harmful)
	}
	fmt.Println("\nreading the table: on the synchronized program the happens-before")
	fmt.Println("detector is silent while lockset warns twice and the lint keeps one")
	fmt.Println("over-approximate candidate (partial fork/join ordering is beyond a")
	fmt.Println("static pass); on the racy programs all three fire, and only the")
	fmt.Println("replay column says which races actually change program state.")
}
