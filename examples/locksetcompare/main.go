// Locksetcompare: the happens-before detector versus the Eraser-style
// lockset baseline (§2.2.2 of the paper).
//
// The program is perfectly synchronized — the parent initializes shared
// data before spawning, the child updates it, and the parent reads it
// after join; a second pair of threads shares a counter under a lock.
// The happens-before detector is silent (there is no race); the lockset
// discipline checker still warns about the fork/join sharing because no
// lock protects it — the classic lockset false positive the paper
// contrasts against.
package main

import (
	"fmt"
	"log"

	racereplay "repro"
)

const src = `
.entry main
.word shared 0
.word mu 0
.word counted 0

; Child owns 'shared' between spawn and join.
child:
  ldi r2, shared
  ld r3, [r2+0]
  muli r3, r3, 3
  st [r2+0], r3
  ldi r1, 0
  sys exit

; Two counters share 'counted' under a consistent lock.
counterw:
  ldi r5, 12
cloop:
  ldi r3, mu
  lock [r3+0]
  ldi r4, counted
  ld r6, [r4+0]
  addi r6, r6, 1
  st [r4+0], r6
  unlock [r3+0]
  addi r5, r5, -1
  bne r5, r0, cloop
  ldi r1, 0
  sys exit

main:
  ldi r2, shared
  ldi r3, 14
  st [r2+0], r3       ; init before spawn: ordered
  ldi r1, child
  ldi r2, 0
  sys spawn
  sys join            ; child's writes ordered before the read below
  ldi r2, shared
  ld r4, [r2+0]
  mov r1, r4
  sys print           ; 42
  ldi r1, counterw
  ldi r2, 0
  sys spawn
  mov r8, r1
  ldi r1, counterw
  sys spawn
  mov r9, r1
  mov r1, r8
  sys join
  mov r1, r9
  sys join
  ldi r2, counted
  ld r1, [r2+0]
  sys print           ; 24
  halt
`

func main() {
	prog, err := racereplay.Assemble("lockset-demo", src)
	if err != nil {
		log.Fatal(err)
	}
	rlog, err := racereplay.Record(prog, racereplay.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	exec, err := racereplay.Replay(rlog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %v\n\n", exec.Thread(0).Output)

	hbRaces := racereplay.DetectRaces(exec)
	fmt.Printf("happens-before detector: %d races", len(hbRaces.Races))
	if len(hbRaces.Races) == 0 {
		fmt.Println("  (correct: every access is ordered by spawn/join or the lock)")
	} else {
		fmt.Println()
		for _, r := range hbRaces.Races {
			fmt.Printf("  %s\n", r.Sites)
		}
	}

	ls := racereplay.DetectRacesLockset(exec)
	fmt.Printf("\nlockset (Eraser) baseline: %d warnings over %d shared addresses\n",
		len(ls.Warnings), ls.Checked)
	for _, w := range ls.Warnings {
		fmt.Printf("  addr 0x%x at %s (earlier access: %s)\n", w.Addr, w.Site, w.OtherSite)
	}
	if len(ls.Warnings) > 0 {
		fmt.Println("\nthe warnings are false positives: fork/join ordering is correct")
		fmt.Println("synchronization, but it is invisible to a locking-discipline check —")
		fmt.Println("which is why the paper builds on happens-before (§2.2.2).")
	}

	// §2.2.2 also claims the replay analysis can clean up a lockset
	// detector's output directly. Run the triage:
	fmt.Println("\nreplay triage of the lockset warnings:")
	for _, tr := range racereplay.TriageLockset(exec, ls, racereplay.Options{}) {
		fmt.Printf("  addr 0x%x: %v (%d ordered pairs, %d racy instances)\n",
			tr.Warning.Addr, tr.Verdict, tr.OrderedPairs, tr.RacyInstances)
	}
	fmt.Println("every warning is dismissed: the conflicting accesses are all ordered")
	fmt.Println("by sequencers, so there is no race at all — exactly the filtering the")
	fmt.Println("paper promises for lockset-based reports.")
}
