package racereplay

import (
	"os"
	"path/filepath"
	"testing"
)

// corpusCase describes one classic-concurrency program in testdata.
type corpusCase struct {
	file       string
	wantOutput []int64 // thread 0's output, identical on every seed
	wantRaces  bool    // whether the happens-before detector must fire
	note       string
}

var corpus = []corpusCase{
	{
		file:       "peterson.rasm",
		wantOutput: []int64{24},
		wantRaces:  true,
		note:       "user-constructed synchronization: racy by the detector, correct by construction",
	},
	{
		file:       "philosophers.rasm",
		wantOutput: []int64{24},
		wantRaces:  false,
		note:       "ordered lock acquisition: deadlock-free and race-free",
	},
	{
		file:       "ringbuffer.rasm",
		wantOutput: []int64{1045},
		wantRaces:  true,
		note:       "SPSC ring synchronized only by index words (both-values-valid sharing)",
	},
	{
		file:       "barrier.rasm",
		wantOutput: []int64{15, 15, 15},
		wantRaces:  false,
		note:       "sense-reversing barrier from one atomic counter",
	},
}

func loadCorpus(t *testing.T, file string) *Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", "programs", file))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(file[:len(file)-len(".rasm")], string(src))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestCorpusPrograms runs each classic concurrent program across several
// seeds: the functional output must be exactly right every time (these
// algorithms are correct), replay must reproduce the run, and the
// detector must fire exactly where synchronization is invisible to it.
func TestCorpusPrograms(t *testing.T) {
	for _, c := range corpus {
		c := c
		t.Run(c.file, func(t *testing.T) {
			prog := loadCorpus(t, c.file)
			racedSomewhere := false
			for seed := int64(1); seed <= 10; seed++ {
				res, err := Analyze(prog, Config{Seed: seed}, Options{})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Machine.Deadlocked {
					t.Fatalf("seed %d: deadlock", seed)
				}
				main := res.Exec.Thread(0)
				if len(main.Output) != len(c.wantOutput) {
					t.Fatalf("seed %d: output %v, want %v", seed, main.Output, c.wantOutput)
				}
				for i := range c.wantOutput {
					if main.Output[i] != c.wantOutput[i] {
						t.Fatalf("seed %d: output %v, want %v (%s)", seed, main.Output, c.wantOutput, c.note)
					}
				}
				if len(res.Races.Races) > 0 {
					racedSomewhere = true
					if !c.wantRaces {
						t.Fatalf("seed %d: unexpected race %v", seed, res.Races.Races[0].Sites)
					}
				}
			}
			if c.wantRaces && !racedSomewhere {
				t.Errorf("%s: expected races on some seed (%s)", c.file, c.note)
			}
		})
	}
}

// TestPetersonClassification: Peterson's lock is the sharpest
// user-constructed-synchronization case — the detector must flag it, and
// the dual-order classifier examines what actually happens when the
// ordering flips. Functional correctness (the counter) is already proven
// above; here we check the analysis runs to completion and produces
// verdicts for every race.
func TestPetersonClassification(t *testing.T) {
	prog := loadCorpus(t, "peterson.rasm")
	analyzed := false
	for seed := int64(1); seed <= 10; seed++ {
		res, err := Analyze(prog, Config{Seed: seed}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Classification.Races {
			analyzed = true
			if r.NSC+r.SC+r.RF != r.Total {
				t.Fatalf("race %v: inconsistent counts", r.Sites)
			}
		}
	}
	if !analyzed {
		t.Error("no Peterson race was ever classified")
	}
}
