package racereplay

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/workloads"
)

// renderSuiteRun renders a suite run exactly as the CLI does — summary,
// Table 1, every race report, and the quarantine section — so two runs
// compare byte-for-byte the way a user would see them.
func renderSuiteRun(run *workloads.SuiteRun) string {
	var b strings.Builder
	b.WriteString(report.Summary(run.Merged, report.SuiteTruth))
	b.WriteString("\n")
	b.WriteString(report.BuildTable1(run.Merged, report.SuiteTruth).Render())
	b.WriteString("\n")
	for _, r := range run.Merged.Races {
		b.WriteString(report.RaceReport(r, report.SuiteTruth))
		b.WriteString("\n")
	}
	for _, q := range run.Quarantined {
		b.WriteString(q.String())
		b.WriteString("\n")
	}
	return b.String()
}

// comparableMetrics strips the metrics that are allowed to differ
// between memo-on and memo-off runs: the cache's own classify.memo.*
// counters and gauge, and everything timing-dependent (wall-clock
// counters/histograms ending in _ns, the pool's load gauges). Every
// remaining metric — the vproc.* replay counters included, thanks to
// the hit-side counter replay — must match exactly.
func comparableMetrics(snap obs.Snapshot) (map[string]uint64, map[string]float64, map[string]obs.HistogramSnapshot) {
	counters := map[string]uint64{}
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "classify.memo.") || strings.HasSuffix(name, "_ns") {
			continue
		}
		counters[name] = v
	}
	gauges := map[string]float64{}
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, "classify.memo.") || strings.HasPrefix(name, "sched.") {
			continue
		}
		gauges[name] = v
	}
	hists := map[string]obs.HistogramSnapshot{}
	for name, h := range snap.Histograms {
		if strings.HasSuffix(name, "_ns") {
			continue
		}
		hists[name] = h
	}
	return counters, gauges, hists
}

func diffMaps[V comparable](t *testing.T, kind string, on, off map[string]V) {
	t.Helper()
	for name, v := range on {
		if ov, ok := off[name]; !ok {
			t.Errorf("%s %q present memo-on, absent memo-off (value %v)", kind, name, v)
		} else if ov != v {
			t.Errorf("%s %q: memo-on %v, memo-off %v", kind, name, v, ov)
		}
	}
	for name, v := range off {
		if _, ok := on[name]; !ok {
			t.Errorf("%s %q present memo-off, absent memo-on (value %v)", kind, name, v)
		}
	}
}

// TestSuiteMemoEquivalence is the tentpole's equivalence guarantee over
// the full suite: with the replay cache on (the default) and off, the
// rendered suite output is byte-identical and every metric except
// classify.memo.* (and timing) matches, at one worker and at eight.
func TestSuiteMemoEquivalence(t *testing.T) {
	for _, jobs := range []int{1, 8} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			regOn := NewMetrics()
			on, err := RunSuiteOpts(SuiteOptions{Seeds: 2, Jobs: jobs, Registry: regOn})
			if err != nil {
				t.Fatal(err)
			}
			regOff := NewMetrics()
			off, err := RunSuiteOpts(SuiteOptions{Seeds: 2, Jobs: jobs, Registry: regOff, NoMemo: true})
			if err != nil {
				t.Fatal(err)
			}

			gotOn, gotOff := renderSuiteRun(on), renderSuiteRun(off)
			if gotOn != gotOff {
				t.Errorf("rendered suite output differs memo-on vs memo-off:\n--- memo-on ---\n%s\n--- memo-off ---\n%s", gotOn, gotOff)
			}

			snapOn, snapOff := regOn.Snapshot(), regOff.Snapshot()
			cOn, gOn, hOn := comparableMetrics(snapOn)
			cOff, gOff, hOff := comparableMetrics(snapOff)
			diffMaps(t, "counter", cOn, cOff)
			diffMaps(t, "gauge", gOn, gOff)
			diffMaps(t, "histogram", hOn, hOff)

			// The equivalence must not be vacuous: the cache engaged (the
			// suite's recurring instances hit) and the off run never touched it.
			if snapOn.Counters["classify.memo.hits"] == 0 {
				t.Error("memo-on run recorded no cache hits — equivalence test is vacuous")
			}
			if snapOff.Counters["classify.memo.hits"]+snapOff.Counters["classify.memo.misses"] != 0 {
				t.Error("memo-off run touched the cache")
			}
		})
	}
}

// TestChaosCorpusMemoEquivalence extends the equivalence to degraded
// inputs: a seeded corruption sweep over a recorded log yields a batch
// of pristine, degraded-but-decodable, and structurally broken logs;
// analyzing the decodable ones must produce identical classifications
// and identical quarantine decisions with the cache on and off.
func TestChaosCorpusMemoEquivalence(t *testing.T) {
	scen, err := workloads.FindScenario("browse")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := scen.Program()
	if err != nil {
		t.Fatal(err)
	}
	log, err := Record(prog, scen.Config())
	if err != nil {
		t.Fatal(err)
	}
	var container bytes.Buffer
	if err := WriteLog(&container, log); err != nil {
		t.Fatal(err)
	}

	// The batch: the pristine log plus every corruption (over one full
	// rotation of the taxonomy) that still decodes — structured
	// corruptions like dup/drop-sequencer often do, and then fail (or
	// degrade) later in the pipeline, which is exactly the surface the
	// cache must not disturb.
	logs := []*Log{log}
	labels := []string{"pristine"}
	in := chaos.NewInjector(7)
	for trial := 0; trial < 32; trial++ {
		bad, kind := in.CorruptFile(container.Bytes(), trial)
		if cl, err := ReadLog(bytes.NewReader(bad)); err == nil {
			logs = append(logs, cl)
			labels = append(labels, fmt.Sprintf("%s#%d", kind, trial))
		}
	}
	if len(logs) < 2 {
		t.Skip("no corruption survived decoding; nothing beyond the pristine log to compare")
	}

	type outcome struct {
		cls        []*Classification
		quarantine []string
	}
	run := func(noMemo bool, jobs int) outcome {
		results, quarantined := AnalyzeLogs(logs, func(i int) Options {
			return Options{Scenario: labels[i], NoMemo: noMemo}
		}, jobs)
		out := outcome{cls: make([]*Classification, len(results))}
		for i, res := range results {
			if res != nil {
				out.cls[i] = res.Classification
			}
		}
		for _, q := range quarantined {
			out.quarantine = append(out.quarantine, q.String())
		}
		return out
	}

	ref := run(false, 1)
	for _, jobs := range []int{1, 8} {
		for _, noMemo := range []bool{false, true} {
			if jobs == 1 && !noMemo {
				continue // the reference itself
			}
			got := run(noMemo, jobs)
			if !reflect.DeepEqual(got.quarantine, ref.quarantine) {
				t.Errorf("jobs=%d noMemo=%v: quarantine %v, want %v", jobs, noMemo, got.quarantine, ref.quarantine)
			}
			if !reflect.DeepEqual(got.cls, ref.cls) {
				t.Errorf("jobs=%d noMemo=%v: classifications diverge from memo-on serial run", jobs, noMemo)
			}
		}
	}
}
